package cluster

import (
	"sync"
	"testing"
)

func vec(dim int, v float32) []float32 {
	out := make([]float32, dim)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestRowCacheDisabledWhenTooSmall(t *testing.T) {
	if c := newRowCache(0, 16); c != nil {
		t.Fatal("zero capacity must disable the cache")
	}
	if c := newRowCache(63, 16); c != nil {
		t.Fatal("capacity below one row must disable the cache")
	}
	if c := newRowCache(64, 16); c == nil {
		t.Fatal("one-row capacity must enable the cache")
	}
}

func TestRowCacheLRUEviction(t *testing.T) {
	const dim = 16 // 64 B per row
	c := newRowCache(3*64, dim)
	for r := 0; r < 3; r++ {
		c.put(r, vec(dim, float32(r)))
	}
	// Touch row 0 so row 1 becomes least recently used, then overflow.
	if _, ok := c.get(0); !ok {
		t.Fatal("row 0 should be resident")
	}
	c.put(3, vec(dim, 3))
	if _, ok := c.get(1); ok {
		t.Fatal("row 1 should have been evicted as LRU")
	}
	for _, r := range []int{0, 2, 3} {
		got, ok := c.get(r)
		if !ok {
			t.Fatalf("row %d should be resident", r)
		}
		if got[0] != float32(r) {
			t.Fatalf("row %d holds %v", r, got[0])
		}
	}
	if c.len() != 3 {
		t.Fatalf("resident rows = %d, want 3", c.len())
	}
}

func TestRowCachePutCopies(t *testing.T) {
	const dim = 16
	c := newRowCache(1024, dim)
	src := vec(dim, 1)
	c.put(7, src)
	src[0] = 99 // caller mutates its slice after insert
	got, ok := c.get(7)
	if !ok || got[0] != 1 {
		t.Fatalf("cache shares caller storage: got %v", got[0])
	}
	// Re-inserting a resident row refreshes recency without growing usage.
	c.put(7, vec(dim, 2))
	if c.len() != 1 {
		t.Fatalf("re-insert grew the cache to %d rows", c.len())
	}
}

func TestRowCacheAccountingUnderConcurrency(t *testing.T) {
	const dim = 16
	c := newRowCache(8*64, dim)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				row := (g + i) % 16
				if _, ok := c.get(row); !ok {
					c.put(row, vec(dim, float32(row)))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.hits.Load() + c.misses.Load(); got != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", got, 8*200)
	}
	if c.len() > 8 {
		t.Fatalf("%d resident rows exceed the 8-row budget", c.len())
	}
}
