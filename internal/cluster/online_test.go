package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
)

// reference is a sequential single-node golden model: an independent build
// of the same config and seed as the cluster's model, mutated only by the
// test itself, so cluster-side write-through bugs cannot leak into the
// expectation.
type reference struct {
	m *recsys.Model
}

func newReference(t *testing.T, mc recsys.Config) *reference {
	t.Helper()
	m, err := recsys.Build(mc, 99) // buildCluster seeds with 99 too
	if err != nil {
		t.Fatal(err)
	}
	return &reference{m: m}
}

// apply accumulates the updates into the reference tables in slice order.
func (ref *reference) apply(ups []runtime.TableUpdate) {
	for _, up := range ups {
		tb := ref.m.Embedding.Tables[up.Table]
		for i, r := range up.Rows {
			dst := tb.Row(r)
			src := up.Grads.Row(i)
			for k := range dst {
				dst[k] += src[k]
			}
		}
	}
}

// embed computes the sequential golden embedding.
func (ref *reference) embed(rows [][]int, batch int) (*tensor.Tensor, error) {
	return ref.m.Embedding.Forward(rows, batch)
}

// randUpdate draws one random update batch: 1-2 tables, dup-heavy rows.
func randUpdate(rng *rand.Rand, mc recsys.Config, maxRows int) []runtime.TableUpdate {
	n := 1 + rng.Intn(2)
	ups := make([]runtime.TableUpdate, 0, n)
	for i := 0; i < n; i++ {
		rows := make([]int, 1+rng.Intn(maxRows))
		for j := range rows {
			if j > 0 && rng.Intn(3) == 0 {
				rows[j] = rows[j-1] // duplicate: must accumulate in order
			} else {
				rows[j] = rng.Intn(mc.TableRows)
			}
		}
		g := tensor.New(len(rows), mc.EmbDim)
		for k := range g.Data() {
			g.Data()[k] = rng.Float32() - 0.5
		}
		ups = append(ups, runtime.TableUpdate{Table: rng.Intn(mc.Tables), Rows: rows, Grads: g})
	}
	return ups
}

// TestGoldenRandomInterleavings is the property-style online-update test:
// for seeds x strategies x update fractions, a random interleaving of
// Embed and ApplyUpdates must stay bit-identical to the sequential
// single-node reference at every step. CI runs it under -race (the cluster
// is internally concurrent even under sequential submission).
func TestGoldenRandomInterleavings(t *testing.T) {
	mc := testConfig(3, 2, 64, false, isa.RAdd)
	seeds := []int64{1, 2}
	steps := 30
	if testing.Short() {
		seeds = seeds[:1]
		steps = 12
	}
	for _, strategy := range []Strategy{TableWise, RowWise} {
		for _, frac := range []float64{0, 0.1, 0.5} {
			for _, seed := range seeds {
				t.Run(strategy.String()+"/"+string('0'+byte(int(frac*10)))+"/seed", func(t *testing.T) {
					c, _ := buildCluster(t, mc, Config{
						Nodes: 3, Strategy: strategy, CacheBytes: 16 << 10,
					})
					ref := newReference(t, mc)
					rng := rand.New(rand.NewSource(seed))
					for step := 0; step < steps; step++ {
						if rng.Float64() < frac {
							ups := randUpdate(rng, mc, c.cfg.MaxBatch*mc.Reduction)
							if err := c.ApplyUpdates(ups); err != nil {
								t.Fatal(err)
							}
							ref.apply(ups)
							continue
						}
						batch := 1 + rng.Intn(c.cfg.MaxBatch)
						rows := make([][]int, mc.Tables)
						for tb := range rows {
							rows[tb] = make([]int, batch*mc.Reduction)
							for j := range rows[tb] {
								// Zipf-ish skew so cache hits occur and the
								// coherence path is actually exercised.
								if rng.Intn(2) == 0 {
									rows[tb][j] = rng.Intn(8)
								} else {
									rows[tb][j] = rng.Intn(mc.TableRows)
								}
							}
						}
						got, err := c.Embed(rows, batch)
						if err != nil {
							t.Fatal(err)
						}
						want, err := ref.embed(rows, batch)
						if err != nil {
							t.Fatal(err)
						}
						if !tensor.Equal(got, want) {
							t.Fatalf("step %d (frac %.1f): cluster embed differs from sequential reference",
								step, frac)
						}
					}
					if frac > 0 {
						m := c.Metrics()
						if m.Updates == 0 || m.RowsUpdated == 0 {
							t.Fatalf("update metrics empty: %+v", m)
						}
					}
				})
			}
		}
	}
}

// TestGoldenConcurrentMixedTraffic hammers one cluster with concurrent
// readers and one updater goroutine per table (per-table order stays
// deterministic), then checks the quiesced state bit-for-bit against the
// sequential reference. Run under -race this also exercises the cache
// version handshake: a stale put surviving an invalidation would make the
// final Embed diverge.
func TestGoldenConcurrentMixedTraffic(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	for _, strategy := range []Strategy{TableWise, RowWise} {
		t.Run(strategy.String(), func(t *testing.T) {
			c, _ := buildCluster(t, mc, Config{
				Nodes: 2, Strategy: strategy, CacheBytes: 16 << 10,
			})
			ref := newReference(t, mc)

			steps := 10
			if testing.Short() {
				steps = 4
			}
			perTable := make([][][]runtime.TableUpdate, mc.Tables)
			for tb := 0; tb < mc.Tables; tb++ {
				rng := rand.New(rand.NewSource(int64(40 + tb)))
				for s := 0; s < steps; s++ {
					rows := []int{rng.Intn(mc.TableRows), rng.Intn(8), rng.Intn(8)}
					g := tensor.New(len(rows), mc.EmbDim)
					for k := range g.Data() {
						g.Data()[k] = rng.Float32() - 0.5
					}
					perTable[tb] = append(perTable[tb],
						[]runtime.TableUpdate{{Table: tb, Rows: rows, Grads: g}})
				}
			}

			var wg sync.WaitGroup
			errs := make([]error, mc.Tables+2)
			for tb := 0; tb < mc.Tables; tb++ {
				wg.Add(1)
				go func(tb int) {
					defer wg.Done()
					for _, ups := range perTable[tb] {
						if err := c.ApplyUpdates(ups); err != nil {
							errs[tb] = err
							return
						}
					}
				}(tb)
			}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(70 + r)))
					for s := 0; s < steps; s++ {
						rows := make([][]int, mc.Tables)
						for tb := range rows {
							rows[tb] = make([]int, 2*mc.Reduction)
							for j := range rows[tb] {
								rows[tb][j] = rng.Intn(8) // hot rows: contend with updates
							}
						}
						if _, err := c.Embed(rows, 2); err != nil {
							errs[mc.Tables+r] = err
							return
						}
					}
				}(r)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			for tb := 0; tb < mc.Tables; tb++ {
				for _, ups := range perTable[tb] {
					ref.apply(ups)
				}
			}

			// Quiesced: sweep every row of every table through Embed and
			// compare with the reference (catches both stale node tables and
			// stale cache entries).
			for base := 0; base < mc.TableRows; base += c.cfg.MaxBatch * mc.Reduction {
				n := c.cfg.MaxBatch * mc.Reduction
				if base+n > mc.TableRows {
					n = mc.TableRows - base
				}
				batch := n / mc.Reduction
				if batch == 0 {
					continue
				}
				rows := make([][]int, mc.Tables)
				for tb := range rows {
					rows[tb] = make([]int, batch*mc.Reduction)
					for j := range rows[tb] {
						rows[tb][j] = base + j
					}
				}
				got, err := c.Embed(rows, batch)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.embed(rows, batch)
				if err != nil {
					t.Fatal(err)
				}
				if !tensor.Equal(got, want) {
					t.Fatalf("rows [%d, %d): quiesced cluster differs from reference", base, base+n)
				}
			}
		})
	}
}

// TestApplyUpdatesValidation pins the error paths of the cluster write
// path: closed cluster, empty batch, bad table, bad rows, bad shape, cap.
func TestApplyUpdatesValidation(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 2})
	g := tensor.New(1, mc.EmbDim)
	if err := c.ApplyUpdates(nil); err == nil {
		t.Fatal("want empty-batch error")
	}
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 5, Rows: []int{0}, Grads: g}}); err == nil {
		t.Fatal("want table-range error")
	}
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 0, Rows: []int{mc.TableRows}, Grads: g}}); err == nil {
		t.Fatal("want row-range error")
	}
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 0, Rows: []int{0, 1}, Grads: g}}); err == nil {
		t.Fatal("want shape error")
	}
	big := make([]int, c.cfg.MaxBatch*mc.Reduction+1)
	bigG := tensor.New(len(big), mc.EmbDim)
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 0, Rows: big, Grads: bigG}}); err == nil {
		t.Fatal("want cap error")
	}
	c.Close()
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 0, Rows: []int{0}, Grads: g}}); err == nil {
		t.Fatal("want closed error")
	}
}

// TestUpdateMetricsAndInvalidation checks the per-shard accounting the
// acceptance criteria name: updates routed, rows updated, cache entries
// invalidated, update bytes charged to the fabric.
func TestUpdateMetricsAndInvalidation(t *testing.T) {
	mc := testConfig(2, 1, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 2, CacheBytes: 32 << 10})

	// Warm the cache with rows 0..3 of both tables.
	rows := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}
	if _, err := c.Embed(rows, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Embed(rows, 4); err != nil { // second pass: hits
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.CacheHits == 0 {
		t.Fatalf("no cache hits after warm pass: %+v", m)
	}

	// Update rows 1 and 2 of table 0: both are resident, so the owning
	// shard must report exactly two invalidations.
	g := tensor.New(2, mc.EmbDim)
	g.Fill(1)
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 0, Rows: []int{1, 2}, Grads: g}}); err != nil {
		t.Fatal(err)
	}
	m = c.Metrics()
	if m.Updates != 1 || m.RowsUpdated != 2 {
		t.Fatalf("cluster update counters: %d updates, %d rows", m.Updates, m.RowsUpdated)
	}
	if m.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", m.Invalidations)
	}
	var subUpdates, updateBytes uint64
	for _, sm := range m.Shards {
		subUpdates += sm.SubUpdates
		updateBytes += sm.UpdateBytes
	}
	wantBytes := uint64(2*4) + uint64(2*mc.EmbBytes())
	if subUpdates == 0 || updateBytes != wantBytes {
		t.Fatalf("shard update accounting: %d sub-updates, %d bytes (want %d)",
			subUpdates, updateBytes, wantBytes)
	}
	if m.UpdateTransfer.Count == 0 {
		t.Fatalf("update transfer not observed: %+v", m.UpdateTransfer)
	}
	// The updated rows must re-gather fresh: an Embed now matches golden.
	got, err := c.Embed(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.GoldenEmbedding(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("post-update embed differs from golden (stale cache?)")
	}
}
