// Package cluster scales the single-node serving stack out to many
// TensorNodes: a Cluster shards one recommender model across N nodes,
// routes every inference batch to the shards owning its rows, gathers the
// partial results over a modeled NVSwitch-class fabric and merges them
// bit-identically to the single-node golden embedding.
//
// The design follows the paper's own scaling argument (Section 4.3: a
// TensorNode is an endpoint of the GPU-side interconnect, so pooled
// capacity and aggregate NMP bandwidth grow with the number of nodes) and
// RecNMP's observation that production embedding traffic is heavily
// skewed, which the per-shard hot-row caches exploit.
//
// Structure of one request:
//
//   - route: every lookup (table, row) maps through the placement — whole
//     tables round-robin for TableWise, rows hashed across shards for
//     RowWise — and probes the owning shard's LRU hot-row cache. Hits are
//     served immediately; misses are deduplicated into one flat index list
//     per shard (a shard stores all its rows as a single gather-only
//     table, so a sub-request is one index list regardless of how many
//     tables it touches).
//   - execute: each non-empty sub-request runs through the shard's own
//     serve.Server (micro-batching across concurrent cluster requests) on
//     the shard's runtime.Deployment, gathering rows near-memory.
//   - transfer: the index lists out and the partial gathered rows back are
//     charged to the fabric with interconnect.Switch.ConvergeSeconds —
//     concurrent shard responses converge on the router's port, so their
//     payloads serialize at its bandwidth.
//   - merge: gathered rows and cache hits are reassembled in request
//     order and pooled with the golden embed.Pool / embed.Average code, so
//     the merged output is bit-identical to Deployment.GoldenEmbedding for
//     both strategies.
//
// Pooling happens at the router rather than near-memory: a row-wise
// pooling group spans shards, and a cache hit must bypass the gather path
// entirely, so shards return raw gathered rows. The near-memory cores
// still perform the gathers — the bandwidth-dominant stage — while the
// cache absorbs the transfer inflation on skewed traffic.
//
// Online updates (ApplyUpdates) reuse the same routing: an update's rows
// split by placement into per-shard sub-updates that SCATTER_ADD
// near-memory through each shard's server, the golden model absorbs the
// same gradients write-through, and the scattered rows are invalidated
// from the shard caches. Per-table locks serialize same-table updates
// (float accumulation order is part of the bit-identity contract), and a
// cache version handshake (rowCache.snapshot / putAt / invalidate) keeps a
// concurrent reader from parking a pre-update row in a cache after the
// update's invalidation pass.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/embed"
	"tensordimm/internal/interconnect"
	"tensordimm/internal/isa"
	"tensordimm/internal/nn"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/stats"
	"tensordimm/internal/tensor"
)

// Config sizes a cluster. The zero value of every optional field selects a
// documented default at New; Nodes is required.
type Config struct {
	// Nodes is the number of TensorNode shards. Required, must be positive.
	Nodes int
	// Strategy selects table-wise (default) or row-wise sharding.
	Strategy Strategy
	// DIMMsPerNode is the TensorDIMM count of each node. Defaults to 8.
	// The model's embedding dimension must be a multiple of
	// DIMMsPerNode x 16 so rows stripe cleanly.
	DIMMsPerNode int
	// PerDIMMBytes overrides each node's per-DIMM capacity. Zero auto-sizes
	// the pool to fit the shard's table slice plus execution scratch.
	PerDIMMBytes uint64
	// MaxBatch caps the samples of one cluster request. Defaults to 64.
	MaxBatch int
	// Workers is each shard server's concurrent executor count (and its
	// deployment's slots and lanes). Defaults to 2.
	Workers int
	// MaxDelay is each shard server's micro-batching deadline. Zero
	// defaults to 100us: sub-requests already carry a whole cluster
	// request's misses, so shards wait only briefly for co-riders.
	MaxDelay time.Duration
	// CacheBytes is the per-shard hot-row cache capacity in bytes. Zero
	// (or anything smaller than one row) disables caching.
	CacheBytes int64
	// Fabric is the switch connecting the shards to the router. A zero
	// value defaults to interconnect.NVSwitch(Nodes + 1): one port per
	// shard plus the router's.
	Fabric interconnect.Switch
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.DIMMsPerNode == 0 {
		c.DIMMsPerNode = 8
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 100 * time.Microsecond
	}
	if c.Fabric.Ports == 0 {
		c.Fabric = interconnect.NVSwitch(c.Nodes + 1)
	}
	return c
}

// shard is one TensorNode of the cluster plus its serving stack.
type shard struct {
	id    int
	node  *node.Node
	srv   *serve.Server
	cache *rowCache // nil when caching is disabled

	subRequests  stats.Counter
	rowsGathered stats.Counter
	partialBytes stats.Counter // gathered rows shipped shard -> router
	indexBytes   stats.Counter // index lists shipped router -> shard
	subUpdates   stats.Counter // sub-updates routed here
	rowsUpdated  stats.Counter // gradient rows scattered near-memory
	updateBytes  stats.Counter // indices + gradients shipped router -> shard
}

// Cluster is a sharded multi-node serving system for one recommender
// model. Create with New, submit with Infer or Embed from any number of
// goroutines, inspect with Metrics, and Close when done.
type Cluster struct {
	model *recsys.Model
	cfg   Config
	place *placement
	shard []*shard

	// tableMu serializes updates per global table: float accumulation is
	// not associative, so per-table ordering — across the shard scatters,
	// the golden write-through and the cache invalidations together — is
	// what keeps Embed bit-identical to the sequential reference. Updates
	// to distinct tables proceed concurrently.
	tableMu []sync.Mutex

	closed      atomic.Bool
	started     time.Time
	requests    stats.Counter
	samples     stats.Counter
	failures    stats.Counter
	lookups     stats.Counter
	updates     stats.Counter // ApplyUpdates calls completed successfully
	updateRows  stats.Counter // gradient rows routed across completed updates
	transfer    stats.Latency // modeled fabric seconds per request
	updTransfer stats.Latency // modeled fabric seconds per update batch
	totalLat    stats.Latency // wall-clock seconds per request
}

// New shards the model across cfg.Nodes TensorNodes: it materializes each
// shard's flat local table from the model's golden tables, builds and
// uploads a gather-only deployment per shard, and starts a serve.Server
// in front of each. The model itself is not modified and keeps serving as
// the golden reference for merges.
func New(m *recsys.Model, cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Strategy != TableWise && cfg.Strategy != RowWise {
		return nil, fmt.Errorf("cluster: unknown strategy %v", cfg.Strategy)
	}
	cfg = cfg.withDefaults()
	mc := m.Cfg
	stripeElems := cfg.DIMMsPerNode * 16
	if mc.EmbDim%stripeElems != 0 {
		return nil, fmt.Errorf("cluster: embedding dim %d must be a multiple of DIMMsPerNode x 16 = %d",
			mc.EmbDim, stripeElems)
	}
	if cfg.MaxBatch < 0 || cfg.Workers < 0 || cfg.MaxDelay < 0 || cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("cluster: negative sizing (MaxBatch %d, Workers %d, MaxDelay %v, CacheBytes %d)",
			cfg.MaxBatch, cfg.Workers, cfg.MaxDelay, cfg.CacheBytes)
	}

	c := &Cluster{
		model:   m,
		cfg:     cfg,
		place:   newPlacement(cfg.Strategy, cfg.Nodes, mc.Tables, mc.TableRows),
		tableMu: make([]sync.Mutex, mc.Tables),
	}
	for s := 0; s < cfg.Nodes; s++ {
		sh, err := c.buildShard(s)
		if err != nil {
			c.Close() // release the shards already built
			return nil, err
		}
		c.shard = append(c.shard, sh)
	}
	// Uptime starts when the cluster is ready to serve, not when table
	// upload began, so Metrics-derived throughput reflects serving time.
	c.started = time.Now()
	return c, nil
}

// buildShard materializes shard s: flat table, node, deployment, server.
// An empty shard (no rows placed on it) gets no serving stack.
func (c *Cluster) buildShard(s int) (*shard, error) {
	mc := c.model.Cfg
	sh := &shard{id: s}
	localRows := c.place.localRows[s]
	if localRows == 0 {
		return sh, nil
	}

	// Flat local table: every row this shard owns, at the flat coordinate
	// placement.locate assigns it. Owned rows are enumerated directly —
	// whole tables for TableWise, the stride-N residue class for RowWise —
	// so construction copies each owned row once instead of scanning the
	// full model per shard.
	flat, err := embed.NewTable(localRows, mc.EmbDim)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d table: %w", s, err)
	}
	for t := 0; t < mc.Tables; t++ {
		base := c.place.flatBase[s][t]
		if base < 0 {
			continue
		}
		src := c.model.Embedding.Tables[t]
		if c.cfg.Strategy == RowWise {
			for i, r := 0, s; r < mc.TableRows; i, r = i+1, r+c.cfg.Nodes {
				copy(flat.Row(base+i), src.Row(r))
			}
		} else {
			for r := 0; r < mc.TableRows; r++ {
				copy(flat.Row(base+r), src.Row(r))
			}
		}
	}

	// Gather-only shard model: one flat table, reduction 1 (pooling happens
	// at the router's merge), a minimal MLP so every Model invariant holds
	// even though the cluster only ever calls Embed on shard servers.
	shardCfg := recsys.Config{
		Name:      fmt.Sprintf("%s/shard%d", mc.Name, s),
		Tables:    1,
		Reduction: 1,
		FCLayers:  0,
		EmbDim:    mc.EmbDim,
		TableRows: localRows,
		Op:        isa.RAdd,
	}
	mlp, err := nn.NewMLP(shardCfg.MLPDims(), int64(s))
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d mlp: %w", s, err)
	}
	shardModel := &recsys.Model{
		Cfg: shardCfg,
		Embedding: &embed.Layer{
			Tables:    []*embed.Table{flat},
			Reduction: 1,
			Op:        isa.RAdd,
		},
		MLP: mlp,
	}

	// Worst case rows of one sub-request: every lookup of a maximal cluster
	// request lands on this shard.
	maxSub := c.place.tablesOn(s) * c.cfg.MaxBatch * mc.Reduction

	nd, err := node.New(node.Config{
		DIMMs:        c.cfg.DIMMsPerNode,
		PerDIMMBytes: c.perDIMMBytes(localRows, maxSub),
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d node: %w", s, err)
	}
	dep, err := runtime.DeployConcurrent(shardModel, nd, maxSub, c.cfg.Workers, c.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d deploy: %w", s, err)
	}
	sh.srv, err = serve.New(serve.Config{
		MaxBatch: maxSub,
		MaxDelay: c.cfg.MaxDelay,
		Workers:  c.cfg.Workers,
	}, dep)
	if err != nil {
		dep.Release()
		return nil, fmt.Errorf("cluster: shard %d server: %w", s, err)
	}
	sh.node = nd
	sh.cache = newRowCache(c.cfg.CacheBytes, mc.EmbDim)
	return sh, nil
}

// perDIMMBytes sizes one shard node's per-DIMM capacity: the flat table,
// two gather buffers per lane, one output region per slot, padding slack
// on each, stripe-alignment margin per allocation, and 50% headroom.
func (c *Cluster) perDIMMBytes(localRows, maxSub int) uint64 {
	if c.cfg.PerDIMMBytes > 0 {
		return c.cfg.PerDIMMBytes
	}
	embBytes := uint64(c.model.Cfg.EmbBytes())
	stripe := uint64(c.cfg.DIMMsPerNode) * isa.BlockBytes
	slack := uint64(isa.LanesPerBlock) * stripe
	region := uint64(maxSub)*embBytes + slack // one gather buffer or output
	workers := uint64(c.cfg.Workers)
	allocs := 1 + 3*workers // table + 2 gather buffers and 1 output each
	need := uint64(localRows)*embBytes + 3*workers*region + allocs*stripe
	per := (need + need/2) / uint64(c.cfg.DIMMsPerNode)
	return (per + 4095) / 4096 * 4096
}

// rowSrc locates one gathered row inside a shard's sub-request result.
type rowSrc struct {
	shard int32
	idx   int32
}

// subreq is the deduplicated flat index list routed to one shard.
type subreq struct {
	rows []int
	pos  map[int]int // flat row -> index in rows
}

// Embed runs the sharded embedding stage for one request of `batch`
// samples and returns the pooled [batch, tables*dim] tensor, bit-identical
// to Deployment.GoldenEmbedding regardless of strategy, cache state or
// co-running requests. perTableRows holds batch x reduction row indices
// per table, exactly as Deployment.Infer takes them. Safe for concurrent
// use.
func (c *Cluster) Embed(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	return c.run(perTableRows, batch, true)
}

// Infer runs Embed plus the model's DNN stage at the router (the GPU that
// received the merged tensor), returning [batch, 1] probabilities. Safe
// for concurrent use.
func (c *Cluster) Infer(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	return c.run(perTableRows, batch, false)
}

// ApplyUpdates applies a batch of per-table gradient updates cluster-wide:
// every entry's rows are routed through the same TableWise/RowWise
// placement as gathers, scattered near-memory on the owning shards (via
// each shard's server, where updates order ahead of co-batched reads),
// written through to the golden model, and invalidated from the shards'
// hot-row caches. Index and gradient transfer bytes are charged to the
// fabric like read traffic.
//
// Ordering. Updates to the same global table are serialized (slice order
// within one call, lock order across calls); updates to distinct tables
// proceed concurrently. After ApplyUpdates returns, every subsequent Embed
// observes the update and remains bit-identical to the sequential golden
// model. An Embed concurrent with the call may observe pre-update rows,
// post-update rows, or (for rows spanning multiple stripes) a mix of
// pre- and post-update stripes — but never a stale cache entry that
// outlives the update (see rowCache's version handshake). Safe for
// concurrent use.
//
// Each entry may carry at most MaxBatch x reduction rows — one request's
// worth, mirroring the read path. The whole batch is validated before
// anything executes. A shard failure mid-batch returns an error and leaves
// that table inconsistent between shards and golden model (counted in
// Failures); callers should treat it as fatal for the deployment.
func (c *Cluster) ApplyUpdates(ups []runtime.TableUpdate) error {
	mc := c.model.Cfg
	if c.closed.Load() {
		return fmt.Errorf("cluster: cluster is closed")
	}
	if len(ups) == 0 {
		return fmt.Errorf("cluster: empty update batch")
	}
	for i, up := range ups {
		if up.Table < 0 || up.Table >= mc.Tables {
			return fmt.Errorf("cluster: update %d: table %d out of range [0, %d)", i, up.Table, mc.Tables)
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != mc.EmbDim {
			return fmt.Errorf("cluster: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), mc.EmbDim)
		}
		if len(up.Rows) > c.cfg.MaxBatch*mc.Reduction {
			return fmt.Errorf("cluster: update %d: %d rows exceed the %d-row update cap",
				i, len(up.Rows), c.cfg.MaxBatch*mc.Reduction)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= mc.TableRows {
				return fmt.Errorf("cluster: update %d: row index %d out of range [0, %d)", i, r, mc.TableRows)
			}
		}
	}

	// Group by table (shared grouping with the runtime, so orderings can
	// never diverge) and fan the groups out: distinct tables update
	// concurrently.
	order, groups := runtime.GroupUpdatesByTable(ups)
	fabricBytes := make([]int64, c.cfg.Nodes)
	var fabricMu sync.Mutex
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, t := range order {
		wg.Add(1)
		go func(gi, t int) {
			defer wg.Done()
			c.tableMu[t].Lock()
			defer c.tableMu[t].Unlock()
			for _, up := range groups[t] {
				bytes, err := c.applyTableUpdate(up)
				if err != nil {
					errs[gi] = err
					return
				}
				fabricMu.Lock()
				for s, b := range bytes {
					fabricBytes[s] += b
				}
				fabricMu.Unlock()
			}
		}(gi, t)
	}
	wg.Wait()
	c.updTransfer.Observe(c.cfg.Fabric.ConvergeSeconds(fabricBytes))
	for _, err := range errs {
		if err != nil {
			c.failures.Inc()
			return err
		}
	}
	rows := 0
	for _, up := range ups {
		rows += len(up.Rows)
	}
	c.updates.Inc()
	c.updateRows.Add(uint64(rows))
	return nil
}

// applyTableUpdate routes one table's update to its owning shards (callers
// hold the table's update lock): split the rows by placement, scatter each
// shard's slice through its server, write through to the golden model, and
// invalidate the scattered rows from the shard caches. Returns the modeled
// per-shard fabric bytes (indices + gradients, router -> shard).
func (c *Cluster) applyTableUpdate(up runtime.TableUpdate) ([]int64, error) {
	mc := c.model.Cfg
	// Split by owning shard, preserving row order per shard (duplicates
	// must accumulate in order).
	shardRows := make(map[int][]int) // shard -> flat local rows
	shardSrc := make(map[int][]int)  // shard -> gradient row indices
	for i, r := range up.Rows {
		s, flat := c.place.locate(up.Table, r)
		shardRows[s] = append(shardRows[s], flat)
		shardSrc[s] = append(shardSrc[s], i)
	}

	bytes := make([]int64, c.cfg.Nodes)
	errs := make(map[int]error, len(shardRows))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s, flatRows := range shardRows {
		wg.Add(1)
		go func(s int, flatRows []int) {
			defer wg.Done()
			sh := c.shard[s]
			grads := tensor.New(len(flatRows), mc.EmbDim)
			for j, i := range shardSrc[s] {
				copy(grads.Row(j), up.Grads.Row(i))
			}
			// The shard stores its rows as one flat gather-only table, so a
			// sub-update always targets table 0 of the shard model.
			err := sh.srv.Update([]runtime.TableUpdate{{Table: 0, Rows: flatRows, Grads: grads}})
			if err != nil {
				mu.Lock()
				errs[s] = err
				mu.Unlock()
				return
			}
			// Invalidate AFTER the scatter committed: the version bump inside
			// invalidate also voids every in-flight putAt snapshotted before
			// now, so no reader can park a pre-update row in the cache.
			if sh.cache != nil {
				sh.cache.invalidate(flatRows)
			}
			upBytes := int64(len(flatRows))*4 + int64(len(flatRows))*mc.EmbBytes()
			sh.subUpdates.Inc()
			sh.rowsUpdated.Add(uint64(len(flatRows)))
			sh.updateBytes.Add(uint64(upBytes))
			bytes[s] = upBytes
		}(s, flatRows)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d update: %w", s, err)
		}
	}
	// Write-through to the golden model, in the same per-table order the
	// shards applied (shared accumulation with the runtime).
	runtime.AccumulateGolden(c.model.Embedding.Tables[up.Table], up)
	return bytes, nil
}

func (c *Cluster) run(perTableRows [][]int, batch int, embedOnly bool) (*tensor.Tensor, error) {
	start := time.Now()
	mc := c.model.Cfg
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: cluster is closed")
	}
	if batch <= 0 || batch > c.cfg.MaxBatch {
		return nil, fmt.Errorf("cluster: batch %d out of range [1, %d]", batch, c.cfg.MaxBatch)
	}
	if len(perTableRows) != mc.Tables {
		return nil, fmt.Errorf("cluster: %d index lists for %d tables", len(perTableRows), mc.Tables)
	}
	lookups := batch * mc.Reduction
	for t, rows := range perTableRows {
		if len(rows) != lookups {
			return nil, fmt.Errorf("cluster: table %d: %d rows for batch %d x reduction %d",
				t, len(rows), batch, mc.Reduction)
		}
		for _, r := range rows {
			if r < 0 || r >= mc.TableRows {
				return nil, fmt.Errorf("cluster: table %d: row index %d out of range [0, %d)", t, r, mc.TableRows)
			}
		}
	}
	c.lookups.Add(uint64(mc.Tables * lookups))

	// Snapshot every cache's version before any gather is dispatched: a
	// row gathered now may predate an update that lands mid-request, and
	// putAt drops it if the version moved (see rowCache).
	cacheVer := make([]uint64, c.cfg.Nodes)
	for s, sh := range c.shard {
		if sh.cache != nil {
			cacheVer[s] = sh.cache.snapshot()
		}
	}

	// Route: resolve every lookup to a cache hit or a deduplicated slot in
	// the owning shard's sub-request.
	subs := make([]*subreq, c.cfg.Nodes)
	hits := make([][][]float32, mc.Tables)
	srcs := make([][]rowSrc, mc.Tables)
	for t, rows := range perTableRows {
		hits[t] = make([][]float32, lookups)
		srcs[t] = make([]rowSrc, lookups)
		for i, r := range rows {
			s, flat := c.place.locate(t, r)
			sh := c.shard[s]
			if sh.cache != nil {
				if vec, ok := sh.cache.get(flat); ok {
					hits[t][i] = vec
					continue
				}
			}
			sub := subs[s]
			if sub == nil {
				sub = &subreq{pos: make(map[int]int)}
				subs[s] = sub
			}
			j, ok := sub.pos[flat]
			if !ok {
				j = len(sub.rows)
				sub.rows = append(sub.rows, flat)
				sub.pos[flat] = j
			}
			srcs[t][i] = rowSrc{shard: int32(s), idx: int32(j)}
		}
	}

	// Execute the per-shard sub-requests concurrently and model the fabric
	// cost: index lists out, partial gathered rows back, both serializing
	// at the router's port.
	results := make([]*tensor.Tensor, c.cfg.Nodes)
	errs := make([]error, c.cfg.Nodes)
	fabricBytes := make([]int64, c.cfg.Nodes)
	var wg sync.WaitGroup
	for s, sub := range subs {
		if sub == nil {
			continue
		}
		wg.Add(1)
		go func(s int, sub *subreq) {
			defer wg.Done()
			sh := c.shard[s]
			n := len(sub.rows)
			results[s], errs[s] = sh.srv.Embed([][]int{sub.rows}, n)
			if errs[s] != nil {
				return // a failed sub-request gathered and transferred nothing
			}
			idxBytes := int64(n) * 4
			rowBytes := int64(n) * mc.EmbBytes()
			sh.subRequests.Inc()
			sh.rowsGathered.Add(uint64(n))
			sh.indexBytes.Add(uint64(idxBytes))
			sh.partialBytes.Add(uint64(rowBytes))
			fabricBytes[s] = idxBytes + rowBytes
		}(s, sub)
	}
	wg.Wait()
	c.transfer.Observe(c.cfg.Fabric.ConvergeSeconds(fabricBytes))
	for s, err := range errs {
		if err != nil {
			c.failures.Inc()
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
	}

	// Feed the caches with the rows just gathered — unless an update bumped
	// the shard's version since the snapshot, in which case the gathered
	// rows may be stale and are not cached.
	for s, sub := range subs {
		if sub == nil || c.shard[s].cache == nil {
			continue
		}
		for flat, j := range sub.pos {
			c.shard[s].cache.putAt(flat, results[s].Row(j), cacheVer[s])
		}
	}

	// Merge: reassemble each table's gathered rows in request order, then
	// pool with the golden code path — bit-identical to Layer.Forward.
	pooled := make([]*tensor.Tensor, mc.Tables)
	for t := 0; t < mc.Tables; t++ {
		g := tensor.New(lookups, mc.EmbDim)
		for i := 0; i < lookups; i++ {
			vec := hits[t][i]
			if vec == nil {
				src := srcs[t][i]
				vec = results[src.shard].Row(int(src.idx))
			}
			copy(g.Row(i), vec)
		}
		var err error
		switch {
		case mc.Reduction == 1:
			pooled[t] = g
		case mc.Mean:
			pooled[t], err = embed.Average(g, mc.Reduction)
		default:
			pooled[t], err = embed.Pool(g, mc.Reduction, mc.Op)
		}
		if err != nil {
			c.failures.Inc()
			return nil, fmt.Errorf("cluster: merge table %d: %w", t, err)
		}
	}
	out, err := tensor.ConcatRows(pooled...)
	if err == nil && !embedOnly {
		out, err = c.model.InferFromEmbeddings(out)
	}
	if err != nil {
		c.failures.Inc()
		return nil, err
	}
	c.requests.Inc()
	c.samples.Add(uint64(batch))
	c.totalLat.Observe(time.Since(start).Seconds())
	return out, nil
}

// GoldenEmbedding computes the single-node reference embedding output the
// cluster's merge must match bit-for-bit.
func (c *Cluster) GoldenEmbedding(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	return c.model.Embedding.Forward(perTableRows, batch)
}

// Nodes returns the shard count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Config returns the cluster's effective configuration (defaults filled).
func (c *Cluster) Config() Config { return c.cfg }

// Close stops accepting requests, shuts down every shard server (draining
// whatever they already accepted) and releases the shard deployments. It
// is idempotent.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	var first error
	for _, sh := range c.shard {
		if sh == nil || sh.srv == nil {
			continue
		}
		if err := sh.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
