// Package cluster scales the single-node serving stack out to many
// TensorNodes: a Cluster shards one recommender model across N nodes,
// routes every inference batch to the shards owning its rows, gathers the
// partial results over a modeled NVSwitch-class fabric and merges them
// bit-identically to the single-node golden embedding.
//
// The design follows the paper's own scaling argument (Section 4.3: a
// TensorNode is an endpoint of the GPU-side interconnect, so pooled
// capacity and aggregate NMP bandwidth grow with the number of nodes) and
// RecNMP's observation that production embedding traffic is heavily
// skewed, which the per-shard hot-row caches exploit.
//
// Structure of one request:
//
//   - route: every lookup (table, row) maps through the placement — whole
//     tables round-robin for TableWise, rows hashed across shards for
//     RowWise — and probes the owning shard's LRU hot-row cache. Hits are
//     served immediately; misses are deduplicated into one flat index list
//     per shard (a shard stores all its rows as a single gather-only
//     table, so a sub-request is one index list regardless of how many
//     tables it touches).
//   - execute: each non-empty sub-request runs through the shard's own
//     serve.Server (micro-batching across concurrent cluster requests) on
//     the shard's runtime.Deployment, gathering rows near-memory.
//   - transfer: the index lists out and the partial gathered rows back are
//     charged to the fabric with interconnect.Switch.ConvergeSeconds —
//     concurrent shard responses converge on the router's port, so their
//     payloads serialize at its bandwidth.
//   - merge: gathered rows and cache hits are reassembled in request
//     order and pooled with the golden embed.Pool / embed.Average code, so
//     the merged output is bit-identical to Deployment.GoldenEmbedding for
//     both strategies.
//
// Pooling happens at the router rather than near-memory: a row-wise
// pooling group spans shards, and a cache hit must bypass the gather path
// entirely, so shards return raw gathered rows. The near-memory cores
// still perform the gathers — the bandwidth-dominant stage — while the
// cache absorbs the transfer inflation on skewed traffic.
//
// Online updates (ApplyUpdates) reuse the same routing: an update's rows
// split by placement into per-shard sub-updates that SCATTER_ADD
// near-memory through each shard's server, the golden model absorbs the
// same gradients write-through, and the scattered rows are invalidated
// from the shard caches. Per-table locks serialize same-table updates
// (float accumulation order is part of the bit-identity contract), and a
// cache version handshake (rowCache.snapshot / putAt / invalidate) keeps a
// concurrent reader from parking a pre-update row in a cache after the
// update's invalidation pass.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/interconnect"
	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/stats"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
)

// Hop indices of the cluster tracer: routing (cache probes + dedup),
// shard gather fan-out (dispatch to last sub-request completion), and the
// golden merge.
const (
	hopRoute = iota
	hopGather
	hopMerge
)

// Config sizes a cluster. The zero value of every optional field selects a
// documented default at New; Nodes is required.
type Config struct {
	// Nodes is the number of TensorNode shards. Required, must be positive.
	Nodes int
	// Strategy selects table-wise (default) or row-wise sharding.
	Strategy Strategy
	// DIMMsPerNode is the TensorDIMM count of each node. Defaults to 8.
	// The model's embedding dimension must be a multiple of
	// DIMMsPerNode x 16 so rows stripe cleanly.
	DIMMsPerNode int
	// PerDIMMBytes overrides each node's per-DIMM capacity. Zero auto-sizes
	// the pool to fit the shard's table slice plus execution scratch.
	PerDIMMBytes uint64
	// MaxBatch caps the samples of one cluster request. Defaults to 64.
	MaxBatch int
	// Workers is each shard server's concurrent executor count (and its
	// deployment's slots and lanes). Defaults to 2.
	Workers int
	// MaxDelay is each shard server's micro-batching deadline. Zero
	// defaults to 100us: sub-requests already carry a whole cluster
	// request's misses, so shards wait only briefly for co-riders.
	MaxDelay time.Duration
	// CacheBytes is the per-shard hot-row cache capacity in bytes. Zero
	// (or anything smaller than one row) disables caching.
	CacheBytes int64
	// Fabric is the switch connecting the shards to the router. A zero
	// value defaults to interconnect.NVSwitch(Nodes + 1): one port per
	// shard plus the router's.
	Fabric interconnect.Switch
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.DIMMsPerNode == 0 {
		c.DIMMsPerNode = 8
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 100 * time.Microsecond
	}
	if c.Fabric.Ports == 0 {
		c.Fabric = interconnect.NVSwitch(c.Nodes + 1)
	}
	return c
}

// shard is one TensorNode of the cluster plus its serving stack.
type shard struct {
	id    int
	node  *node.Node
	srv   *serve.Server
	cache *rowCache // nil when caching is disabled

	subRequests  stats.Counter
	rowsGathered stats.Counter
	partialBytes stats.Counter // gathered rows shipped shard -> router
	indexBytes   stats.Counter // index lists shipped router -> shard
	subUpdates   stats.Counter // sub-updates routed here
	rowsUpdated  stats.Counter // gradient rows scattered near-memory
	updateBytes  stats.Counter // indices + gradients shipped router -> shard
}

// Cluster is a sharded multi-node serving system for one recommender
// model. Create with New, submit with Infer or Embed from any number of
// goroutines, inspect with Metrics, and Close when done.
//
// Memory discipline. Every request borrows a routerScratch from a pool —
// flat per-shard sub-request slices with an epoch-stamped dedup table (no
// per-request maps), a hit buffer the caches copy into, and per-shard
// result buffers the shard servers gather into — and sub-requests are
// dispatched through a fixed pool of router workers, so the steady-state
// Embed path performs no heap allocations (see ARCHITECTURE.md, "Memory
// discipline").
type Cluster struct {
	model *recsys.Model
	cfg   Config
	place *Placement
	shard []*shard

	scratchPool sync.Pool
	dispatch    chan *shardCall

	// runMu guards the closed flag against the in-flight counter so Close
	// can wait for every running request before tearing the shards down.
	runMu    sync.Mutex
	inflight sync.WaitGroup

	// tableMu serializes updates per global table: float accumulation is
	// not associative, so per-table ordering — across the shard scatters,
	// the golden write-through and the cache invalidations together — is
	// what keeps Embed bit-identical to the sequential reference. Updates
	// to distinct tables proceed concurrently.
	tableMu []sync.Mutex

	closed      atomic.Bool
	started     time.Time
	requests    stats.Counter
	samples     stats.Counter
	failures    stats.Counter
	lookups     stats.Counter
	updates     stats.Counter // ApplyUpdates calls completed successfully
	updateRows  stats.Counter // gradient rows routed across completed updates
	transfer    stats.Latency // modeled fabric seconds per request
	updTransfer stats.Latency // modeled fabric seconds per update batch
	totalLat    stats.Latency // wall-clock seconds per request

	// Telemetry plane, nil until Instrument; every hot-path use is
	// nil-guarded (see Instrument).
	tTotal  *telemetry.Histogram
	tFabric *telemetry.Histogram
	tracer  *telemetry.Tracer
}

// New shards the model across cfg.Nodes TensorNodes: it materializes each
// shard's flat local table from the model's golden tables, builds and
// uploads a gather-only deployment per shard, and starts a serve.Server
// in front of each. The model itself is not modified and keeps serving as
// the golden reference for merges.
func New(m *recsys.Model, cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Strategy != TableWise && cfg.Strategy != RowWise {
		return nil, fmt.Errorf("cluster: unknown strategy %v", cfg.Strategy)
	}
	cfg = cfg.withDefaults()
	mc := m.Cfg
	stripeElems := cfg.DIMMsPerNode * 16
	if mc.EmbDim%stripeElems != 0 {
		return nil, fmt.Errorf("cluster: embedding dim %d must be a multiple of DIMMsPerNode x 16 = %d",
			mc.EmbDim, stripeElems)
	}
	if cfg.MaxBatch < 0 || cfg.Workers < 0 || cfg.MaxDelay < 0 || cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("cluster: negative sizing (MaxBatch %d, Workers %d, MaxDelay %v, CacheBytes %d)",
			cfg.MaxBatch, cfg.Workers, cfg.MaxDelay, cfg.CacheBytes)
	}

	c := &Cluster{
		model:   m,
		cfg:     cfg,
		place:   NewPlacement(cfg.Strategy, cfg.Nodes, mc.Tables, mc.TableRows),
		tableMu: make([]sync.Mutex, mc.Tables),
	}
	c.scratchPool.New = func() any { return c.newScratch() }
	// Router workers: enough for every shard of several concurrent
	// requests to be in flight at once. A call beyond that queues briefly;
	// the shard servers' micro-batching absorbs the jitter.
	workers := cfg.Nodes * cfg.Workers * 2
	c.dispatch = make(chan *shardCall, workers)
	for i := 0; i < workers; i++ {
		go c.dispatchWorker()
	}
	for s := 0; s < cfg.Nodes; s++ {
		sh, err := c.buildShard(s)
		if err != nil {
			c.Close() // release the shards already built
			return nil, err
		}
		c.shard = append(c.shard, sh)
	}
	// Uptime starts when the cluster is ready to serve, not when table
	// upload began, so Metrics-derived throughput reflects serving time.
	c.started = time.Now()
	return c, nil
}

// buildShard materializes shard s: flat table, node, deployment, server.
// An empty shard (no rows placed on it) gets no serving stack.
func (c *Cluster) buildShard(s int) (*shard, error) {
	mc := c.model.Cfg
	sh := &shard{id: s}
	localRows := c.place.localRows[s]
	if localRows == 0 {
		return sh, nil
	}

	// Gather-only shard model: one flat table holding every row this shard
	// owns at the flat coordinate Placement.Locate assigns it, reduction 1
	// (pooling happens at the router's merge). Shared with the remote
	// serving path (ExtractShardModel), so an in-process shard and a
	// -shard-id TensorNode process serve identical bytes.
	shardModel, err := buildShardModel(c.model, c.place, s)
	if err != nil {
		return nil, err
	}

	// Worst case rows of one sub-request: every lookup of a maximal cluster
	// request lands on this shard.
	maxSub := c.place.MaxSub(s, c.cfg.MaxBatch, mc.Reduction)

	nd, err := node.New(node.Config{
		DIMMs:        c.cfg.DIMMsPerNode,
		PerDIMMBytes: c.perDIMMBytes(localRows, maxSub),
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d node: %w", s, err)
	}
	dep, err := runtime.DeployConcurrent(shardModel, nd, maxSub, c.cfg.Workers, c.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d deploy: %w", s, err)
	}
	sh.srv, err = serve.New(serve.Config{
		MaxBatch: maxSub,
		MaxDelay: c.cfg.MaxDelay,
		Workers:  c.cfg.Workers,
	}, dep)
	if err != nil {
		dep.Release()
		return nil, fmt.Errorf("cluster: shard %d server: %w", s, err)
	}
	sh.node = nd
	sh.cache = newRowCache(c.cfg.CacheBytes, mc.EmbDim, localRows)
	return sh, nil
}

// perDIMMBytes sizes one shard node's per-DIMM capacity: the flat table,
// two gather buffers per lane, one output region per slot, padding slack
// on each, stripe-alignment margin per allocation, and 50% headroom.
func (c *Cluster) perDIMMBytes(localRows, maxSub int) uint64 {
	if c.cfg.PerDIMMBytes > 0 {
		return c.cfg.PerDIMMBytes
	}
	embBytes := uint64(c.model.Cfg.EmbBytes())
	stripe := uint64(c.cfg.DIMMsPerNode) * isa.BlockBytes
	slack := uint64(isa.LanesPerBlock) * stripe
	region := uint64(maxSub)*embBytes + slack // one gather buffer or output
	workers := uint64(c.cfg.Workers)
	allocs := 1 + 3*workers // table + 2 gather buffers and 1 output each
	need := uint64(localRows)*embBytes + 3*workers*region + allocs*stripe
	per := (need + need/2) / uint64(c.cfg.DIMMsPerNode)
	return (per + 4095) / 4096 * 4096
}

// rowSrc locates one lookup's resolved row: shard >= 0 indexes into that
// shard's sub-request result, shard == -1 indexes a row of the scratch's
// hit buffer (the lookup was served by a cache).
type rowSrc struct {
	shard int32
	idx   int32
}

// subScratch is one shard's slice of a routerScratch: the deduplicated
// flat index list being built, the buffer the shard server gathers into,
// and the epoch-stamped dedup table replacing the per-request map — a slot
// is live only when its stamp equals the scratch's current epoch, so reuse
// costs one increment instead of a map allocation.
type subScratch struct {
	rows    []int   // deduplicated flat rows routed to this shard
	rowsArg [][]int // reused 1-element header for the shard server call
	out     []float32
	stamp   []uint32 // dedup: stamp[flat] == epoch means slot[flat] is live
	slot    []int32  // dedup: flat row -> index in rows
}

// routerScratch is the per-request working set of the router, pooled on
// the cluster. A scratch is owned by exactly one request from Get to Put.
type routerScratch struct {
	wg       sync.WaitGroup
	epoch    uint32
	cacheVer []uint64
	fabric   []int64
	calls    []shardCall
	sub      []subScratch
	src      []rowSrc  // tables x lookups resolved sources
	hitBuf   []float32 // cache hits, one dim-wide row per hit
	hitRows  int
	// lookups is the current request's batch x reduction; vec is the
	// Merger callback over src/sub/hitBuf, built once per scratch so the
	// merge stays allocation-free.
	lookups int
	vec     func(t, i int) []float32
	span    telemetry.Span // per-hop trace slot, recycled with the scratch
}

// shardCall is one shard sub-request being executed by a router worker.
type shardCall struct {
	c   *Cluster
	s   int
	scr *routerScratch
	err error
}

// newScratch sizes a routerScratch for the cluster's geometry.
func (c *Cluster) newScratch() *routerScratch {
	mc := c.model.Cfg
	lookups := c.cfg.MaxBatch * mc.Reduction
	scr := &routerScratch{
		cacheVer: make([]uint64, c.cfg.Nodes),
		fabric:   make([]int64, c.cfg.Nodes),
		calls:    make([]shardCall, c.cfg.Nodes),
		sub:      make([]subScratch, c.cfg.Nodes),
		src:      make([]rowSrc, mc.Tables*lookups),
		hitBuf:   make([]float32, mc.Tables*lookups*mc.EmbDim),
	}
	for s := range scr.sub {
		maxSub := c.place.TablesOn(s) * lookups
		scr.sub[s] = subScratch{
			rows:    make([]int, 0, maxSub),
			rowsArg: make([][]int, 1),
			out:     make([]float32, 0, maxSub*mc.EmbDim),
			stamp:   make([]uint32, c.place.localRows[s]),
			slot:    make([]int32, c.place.localRows[s]),
		}
	}
	for s := range scr.calls {
		scr.calls[s] = shardCall{c: c, s: s, scr: scr}
	}
	dim := mc.EmbDim
	scr.vec = func(t, i int) []float32 {
		src := scr.src[t*scr.lookups+i]
		if src.shard < 0 {
			return scr.hitBuf[int(src.idx)*dim : (int(src.idx)+1)*dim]
		}
		out := scr.sub[src.shard].out
		return out[int(src.idx)*dim : (int(src.idx)+1)*dim]
	}
	return scr
}

// nextEpoch advances the scratch's dedup epoch, clearing the stamp tables
// only on the (rare) wrap-around.
func (scr *routerScratch) nextEpoch() uint32 {
	scr.epoch++
	if scr.epoch == 0 {
		for s := range scr.sub {
			clear(scr.sub[s].stamp)
		}
		scr.epoch = 1
	}
	return scr.epoch
}

// dispatchWorker executes shard sub-requests until Close drains the pool.
func (c *Cluster) dispatchWorker() {
	for call := range c.dispatch {
		call.run()
		call.scr.wg.Done()
	}
}

// run executes one shard's sub-request: the shard server gathers the
// deduplicated rows into the scratch's per-shard buffer, and the transfer
// is accounted per shard for the fabric model.
func (call *shardCall) run() {
	c, s, scr := call.c, call.s, call.scr
	sh := c.shard[s]
	sub := &scr.sub[s]
	n := len(sub.rows)
	sub.rowsArg[0] = sub.rows
	out, err := sh.srv.EmbedInto(sub.out[:0], sub.rowsArg, n)
	if err != nil {
		call.err = err
		return // a failed sub-request gathered and transferred nothing
	}
	sub.out, call.err = out, nil
	idxBytes := int64(n) * 4
	rowBytes := int64(n) * c.model.Cfg.EmbBytes()
	sh.subRequests.Inc()
	sh.rowsGathered.Add(uint64(n))
	sh.indexBytes.Add(uint64(idxBytes))
	sh.partialBytes.Add(uint64(rowBytes))
	scr.fabric[s] = idxBytes + rowBytes
}

// Embed runs the sharded embedding stage for one request of `batch`
// samples and returns the pooled [batch, tables*dim] tensor, bit-identical
// to Deployment.GoldenEmbedding regardless of strategy, cache state or
// co-running requests. perTableRows holds batch x reduction row indices
// per table, exactly as Deployment.Infer takes them. Safe for concurrent
// use.
func (c *Cluster) Embed(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	mc := c.model.Cfg
	if err := c.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	dst := make([]float32, batch*mc.Tables*mc.EmbDim)
	if _, err := c.run(dst, perTableRows, batch, true); err != nil {
		return nil, err
	}
	return tensor.FromSlice(dst, batch, mc.Tables*mc.EmbDim)
}

// EmbedInto is Embed writing the pooled [batch, tables*dim] values
// row-major into dst, which is grown if its capacity is insufficient and
// returned re-sliced to exactly batch*tables*dim. A caller that reuses the
// returned slice performs zero heap allocations in steady state; the
// cluster writes to dst only for the duration of the call and never
// retains it. Safe for concurrent use (with distinct dst buffers).
func (c *Cluster) EmbedInto(dst []float32, perTableRows [][]int, batch int) ([]float32, error) {
	mc := c.model.Cfg
	if err := c.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	need := batch * mc.Tables * mc.EmbDim
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	if _, err := c.run(dst, perTableRows, batch, true); err != nil {
		return nil, err
	}
	return dst, nil
}

// Infer runs Embed plus the model's DNN stage at the router (the GPU that
// received the merged tensor), returning [batch, 1] probabilities. Safe
// for concurrent use.
func (c *Cluster) Infer(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	mc := c.model.Cfg
	if err := c.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	dst := make([]float32, batch*mc.Tables*mc.EmbDim)
	return c.run(dst, perTableRows, batch, false)
}

// ApplyUpdates applies a batch of per-table gradient updates cluster-wide:
// every entry's rows are routed through the same TableWise/RowWise
// placement as gathers, scattered near-memory on the owning shards (via
// each shard's server, where updates order ahead of co-batched reads),
// written through to the golden model, and invalidated from the shards'
// hot-row caches. Index and gradient transfer bytes are charged to the
// fabric like read traffic.
//
// Ordering. Updates to the same global table are serialized (slice order
// within one call, lock order across calls); updates to distinct tables
// proceed concurrently. After ApplyUpdates returns, every subsequent Embed
// observes the update and remains bit-identical to the sequential golden
// model. An Embed concurrent with the call may observe pre-update rows,
// post-update rows, or (for rows spanning multiple stripes) a mix of
// pre- and post-update stripes — but never a stale cache entry that
// outlives the update (see rowCache's version handshake). Safe for
// concurrent use.
//
// Each entry may carry at most MaxBatch x reduction rows — one request's
// worth, mirroring the read path. The whole batch is validated before
// anything executes. A shard failure mid-batch returns an error and leaves
// that table inconsistent between shards and golden model (counted in
// Failures); callers should treat it as fatal for the deployment.
func (c *Cluster) ApplyUpdates(ups []runtime.TableUpdate) error {
	mc := c.model.Cfg
	if len(ups) == 0 {
		return fmt.Errorf("cluster: empty update batch")
	}
	for i, up := range ups {
		if up.Table < 0 || up.Table >= mc.Tables {
			return fmt.Errorf("cluster: update %d: table %d out of range [0, %d)", i, up.Table, mc.Tables)
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != mc.EmbDim {
			return fmt.Errorf("cluster: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), mc.EmbDim)
		}
		if len(up.Rows) > c.cfg.MaxBatch*mc.Reduction {
			return fmt.Errorf("cluster: update %d: %d rows exceed the %d-row update cap",
				i, len(up.Rows), c.cfg.MaxBatch*mc.Reduction)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= mc.TableRows {
				return fmt.Errorf("cluster: update %d: row index %d out of range [0, %d)", i, r, mc.TableRows)
			}
		}
	}

	if err := c.enter(); err != nil {
		return err
	}
	defer c.inflight.Done()

	// Group by table (shared grouping with the runtime, so orderings can
	// never diverge) and fan the groups out: distinct tables update
	// concurrently.
	order, groups := runtime.GroupUpdatesByTable(ups)
	fabricBytes := make([]int64, c.cfg.Nodes)
	var fabricMu sync.Mutex
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, t := range order {
		wg.Add(1)
		go func(gi, t int) {
			defer wg.Done()
			c.tableMu[t].Lock()
			defer c.tableMu[t].Unlock()
			for _, up := range groups[t] {
				bytes, err := c.applyTableUpdate(up)
				if err != nil {
					errs[gi] = err
					return
				}
				fabricMu.Lock()
				for s, b := range bytes {
					fabricBytes[s] += b
				}
				fabricMu.Unlock()
			}
		}(gi, t)
	}
	wg.Wait()
	c.updTransfer.Observe(c.cfg.Fabric.ConvergeSeconds(fabricBytes))
	for _, err := range errs {
		if err != nil {
			c.failures.Inc()
			return err
		}
	}
	rows := 0
	for _, up := range ups {
		rows += len(up.Rows)
	}
	c.updates.Inc()
	c.updateRows.Add(uint64(rows))
	return nil
}

// applyTableUpdate routes one table's update to its owning shards (callers
// hold the table's update lock): split the rows by placement, scatter each
// shard's slice through its server, write through to the golden model, and
// invalidate the scattered rows from the shard caches. Returns the modeled
// per-shard fabric bytes (indices + gradients, router -> shard).
func (c *Cluster) applyTableUpdate(up runtime.TableUpdate) ([]int64, error) {
	mc := c.model.Cfg
	// Split by owning shard, preserving row order per shard (duplicates
	// must accumulate in order).
	shardRows := make(map[int][]int) // shard -> flat local rows
	shardSrc := make(map[int][]int)  // shard -> gradient row indices
	for i, r := range up.Rows {
		s, flat := c.place.Locate(up.Table, r)
		shardRows[s] = append(shardRows[s], flat)
		shardSrc[s] = append(shardSrc[s], i)
	}

	bytes := make([]int64, c.cfg.Nodes)
	errs := make(map[int]error, len(shardRows))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s, flatRows := range shardRows {
		wg.Add(1)
		go func(s int, flatRows []int) {
			defer wg.Done()
			sh := c.shard[s]
			grads := tensor.New(len(flatRows), mc.EmbDim)
			for j, i := range shardSrc[s] {
				copy(grads.Row(j), up.Grads.Row(i))
			}
			// The shard stores its rows as one flat gather-only table, so a
			// sub-update always targets table 0 of the shard model.
			err := sh.srv.Update([]runtime.TableUpdate{{Table: 0, Rows: flatRows, Grads: grads}})
			if err != nil {
				mu.Lock()
				errs[s] = err
				mu.Unlock()
				return
			}
			// Invalidate AFTER the scatter committed: the version bump inside
			// invalidate also voids every in-flight putAt snapshotted before
			// now, so no reader can park a pre-update row in the cache.
			if sh.cache != nil {
				sh.cache.invalidate(flatRows)
			}
			upBytes := int64(len(flatRows))*4 + int64(len(flatRows))*mc.EmbBytes()
			sh.subUpdates.Inc()
			sh.rowsUpdated.Add(uint64(len(flatRows)))
			sh.updateBytes.Add(uint64(upBytes))
			bytes[s] = upBytes
		}(s, flatRows)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d update: %w", s, err)
		}
	}
	// Write-through to the golden model, in the same per-table order the
	// shards applied (shared accumulation with the runtime).
	runtime.AccumulateGolden(c.model.Embedding.Tables[up.Table], up)
	return bytes, nil
}

// validateRead checks one read submission against the cluster geometry.
func (c *Cluster) validateRead(perTableRows [][]int, batch int) error {
	mc := c.model.Cfg
	if batch <= 0 || batch > c.cfg.MaxBatch {
		return fmt.Errorf("cluster: batch %d out of range [1, %d]", batch, c.cfg.MaxBatch)
	}
	if len(perTableRows) != mc.Tables {
		return fmt.Errorf("cluster: %d index lists for %d tables", len(perTableRows), mc.Tables)
	}
	lookups := batch * mc.Reduction
	for t, rows := range perTableRows {
		if len(rows) != lookups {
			return fmt.Errorf("cluster: table %d: %d rows for batch %d x reduction %d",
				t, len(rows), batch, mc.Reduction)
		}
		for _, r := range rows {
			if r < 0 || r >= mc.TableRows {
				return fmt.Errorf("cluster: table %d: row index %d out of range [0, %d)", t, r, mc.TableRows)
			}
		}
	}
	return nil
}

// enter registers one in-flight operation, failing when the cluster is
// closed; the matching c.inflight.Done() lets Close drain before teardown.
func (c *Cluster) enter() error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("cluster: cluster is closed")
	}
	c.inflight.Add(1)
	return nil
}

// run executes one validated request against dst (length batch*tables*dim):
// route, execute, transfer, merge. For embedOnly it returns (nil, nil) with
// the pooled values in dst; otherwise it returns the DNN output.
func (c *Cluster) run(dst []float32, perTableRows [][]int, batch int, embedOnly bool) (*tensor.Tensor, error) {
	start := time.Now()
	mc := c.model.Cfg
	if err := c.enter(); err != nil {
		return nil, err
	}
	defer c.inflight.Done()
	lookups := batch * mc.Reduction
	dim := mc.EmbDim
	c.lookups.Add(uint64(mc.Tables * lookups))

	scr := c.scratchPool.Get().(*routerScratch)
	defer c.scratchPool.Put(scr)
	epoch := scr.nextEpoch()
	scr.hitRows = 0
	scr.lookups = lookups
	if c.tracer != nil {
		scr.span.BeginAt(start)
	}

	// Snapshot every cache's version before any gather is dispatched: a
	// row gathered now may predate an update that lands mid-request, and
	// putAt drops it if the version moved (see rowCache).
	for s, sh := range c.shard {
		scr.fabric[s] = 0
		scr.sub[s].rows = scr.sub[s].rows[:0]
		if sh.cache != nil {
			scr.cacheVer[s] = sh.cache.snapshot()
		}
	}

	// Route: resolve every lookup to a cache hit (copied into the hit
	// buffer, so no reference into the cache outlives the probe) or a
	// deduplicated slot in the owning shard's sub-request.
	for t, rows := range perTableRows {
		srcRow := scr.src[t*lookups : (t+1)*lookups]
		for i, r := range rows {
			s, flat := c.place.Locate(t, r)
			sh := c.shard[s]
			if sh.cache != nil {
				hit := scr.hitBuf[scr.hitRows*dim : (scr.hitRows+1)*dim]
				if sh.cache.getInto(flat, hit) {
					srcRow[i] = rowSrc{shard: -1, idx: int32(scr.hitRows)}
					scr.hitRows++
					continue
				}
			}
			sub := &scr.sub[s]
			if sub.stamp[flat] == epoch {
				srcRow[i] = rowSrc{shard: int32(s), idx: sub.slot[flat]}
				continue
			}
			sub.stamp[flat] = epoch
			sub.slot[flat] = int32(len(sub.rows))
			srcRow[i] = rowSrc{shard: int32(s), idx: sub.slot[flat]}
			sub.rows = append(sub.rows, flat)
		}
	}
	if c.tracer != nil {
		scr.span.Mark(hopRoute)
	}

	// Execute the per-shard sub-requests concurrently through the router
	// workers and model the fabric cost: index lists out, partial gathered
	// rows back, both serializing at the router's port.
	for s := range scr.sub {
		if len(scr.sub[s].rows) == 0 {
			continue
		}
		scr.calls[s].err = nil
		scr.wg.Add(1)
		c.dispatch <- &scr.calls[s]
	}
	scr.wg.Wait()
	fabric := c.cfg.Fabric.ConvergeSeconds(scr.fabric)
	c.transfer.Observe(fabric)
	if c.tracer != nil {
		scr.span.Mark(hopGather)
		c.tFabric.Observe(fabric)
	}
	for s := range scr.sub {
		if len(scr.sub[s].rows) == 0 {
			continue
		}
		if err := scr.calls[s].err; err != nil {
			c.failures.Inc()
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
	}

	// Feed the caches with the rows just gathered — unless an update bumped
	// the shard's version since the snapshot, in which case the gathered
	// rows may be stale and are not cached.
	for s := range scr.sub {
		sub := &scr.sub[s]
		if len(sub.rows) == 0 || c.shard[s].cache == nil {
			continue
		}
		for j, flat := range sub.rows {
			c.shard[s].cache.putAt(flat, sub.out[j*dim:(j+1)*dim], scr.cacheVer[s])
		}
	}

	// Merge: pool each table's rows in request order directly into dst
	// through the shared Merger — the exact golden embed.Pool /
	// embed.Average operation sequence, bit-identical to Layer.Forward.
	width := mc.Tables * dim
	merger := Merger{Tables: mc.Tables, Dim: dim, Reduction: mc.Reduction, Mean: mc.Mean, Op: mc.Op}
	if err := merger.Merge(dst, batch, scr.vec); err != nil {
		c.failures.Inc()
		return nil, err
	}
	if c.tracer != nil {
		scr.span.Mark(hopMerge)
	}

	if embedOnly {
		c.requests.Inc()
		c.samples.Add(uint64(batch))
		c.finishRequest(scr, start)
		return nil, nil
	}
	view, err := tensor.FromSlice(dst, batch, width)
	if err == nil {
		view, err = c.model.InferFromEmbeddings(view)
	}
	if err != nil {
		c.failures.Inc()
		return nil, err
	}
	c.requests.Inc()
	c.samples.Add(uint64(batch))
	c.finishRequest(scr, start)
	return view, nil
}

// finishRequest records a completed request's total latency into both the
// legacy reservoir and (when instrumented) the telemetry histogram, and
// finishes the scratch's trace span.
func (c *Cluster) finishRequest(scr *routerScratch, start time.Time) {
	total := time.Since(start).Seconds()
	c.totalLat.Observe(total)
	if c.tracer != nil {
		c.tTotal.Observe(total)
		c.tracer.Finish(&scr.span)
	}
}

// GoldenEmbedding computes the single-node reference embedding output the
// cluster's merge must match bit-for-bit.
func (c *Cluster) GoldenEmbedding(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	return c.model.Embedding.Forward(perTableRows, batch)
}

// Nodes returns the shard count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Geometry reports the sharded model's shape and limits: table count,
// pooling reduction, embedding dimension, table height, and the per-request
// batch cap. The network serving plane announces exactly these numbers in
// its wire handshake, so a remote client can validate and size every
// request without out-of-band configuration.
func (c *Cluster) Geometry() (tables, reduction, dim, tableRows, maxBatch int) {
	mc := c.model.Cfg
	return mc.Tables, mc.Reduction, mc.EmbDim, mc.TableRows, c.cfg.MaxBatch
}

// Config returns the cluster's effective configuration (defaults filled).
func (c *Cluster) Config() Config { return c.cfg }

// HotRows returns up to k flat local rows of one shard ranked by lifetime
// cache-probe count, hottest first — the Zipf head the shard's traffic
// actually exercised. A serving process persists this list at drain so a
// warm restart can WarmCache before admitting traffic. Returns nil when
// the shard has no cache (or no traffic yet).
func (c *Cluster) HotRows(shard, k int) []int {
	if shard < 0 || shard >= len(c.shard) || c.shard[shard] == nil || c.shard[shard].cache == nil || k <= 0 {
		return nil
	}
	return c.shard[shard].cache.hotRows(k)
}

// WarmCache pre-populates one shard's hot-row cache with the given flat
// local rows (hottest first, as HotRows returns them): the rows gather
// through the shard's normal serving path in sub-request-sized chunks and
// park in the cache, so the first post-restart requests hit instead of
// paying the near-memory gather. Out-of-range rows are skipped — the list
// may come from a stale persisted file whose placement changed. Returns
// how many rows were cached. No-op (0, nil) when the shard has no cache.
func (c *Cluster) WarmCache(shard int, flatRows []int) (int, error) {
	if shard < 0 || shard >= len(c.shard) {
		return 0, fmt.Errorf("cluster: shard %d out of range [0, %d)", shard, len(c.shard))
	}
	sh := c.shard[shard]
	if sh == nil || sh.srv == nil || sh.cache == nil || len(flatRows) == 0 {
		return 0, nil
	}
	if err := c.enter(); err != nil {
		return 0, err
	}
	defer c.inflight.Done()
	mc := c.model.Cfg
	localRows := c.place.LocalRows(shard)
	maxSub := c.place.MaxSub(shard, c.cfg.MaxBatch, mc.Reduction)
	rows := make([]int, 0, min(len(flatRows), localRows))
	for _, r := range flatRows {
		if r >= 0 && r < localRows {
			rows = append(rows, r)
		}
	}
	// Capacity-bound the warm set: inserting more rows than fit would just
	// evict the hotter prefix.
	if fit := int(c.cfg.CacheBytes / (int64(mc.EmbDim) * 4)); len(rows) > fit {
		rows = rows[:fit]
	}
	ver := sh.cache.snapshot()
	buf := make([]float32, maxSub*mc.EmbDim)
	warmed := 0
	for at := 0; at < len(rows); {
		n := min(maxSub, len(rows)-at)
		chunk := rows[at : at+n]
		out, err := sh.srv.EmbedInto(buf[:n*mc.EmbDim], [][]int{chunk}, n)
		if err != nil {
			return warmed, fmt.Errorf("cluster: shard %d warm: %w", shard, err)
		}
		for i, r := range chunk {
			sh.cache.putAt(r, out[i*mc.EmbDim:(i+1)*mc.EmbDim], ver)
			warmed++
		}
		at += n
	}
	return warmed, nil
}

// Close stops accepting requests, waits for every in-flight request and
// update to drain, shuts down every shard server (draining whatever they
// already accepted), releases the shard deployments, stops the router
// workers, and stops the shard nodes' executor workers. It is idempotent.
func (c *Cluster) Close() error {
	c.runMu.Lock()
	already := c.closed.Swap(true)
	c.runMu.Unlock()
	if already {
		return nil
	}
	c.inflight.Wait()
	var first error
	for _, sh := range c.shard {
		if sh == nil || sh.srv == nil {
			continue
		}
		if err := sh.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	close(c.dispatch)
	for _, sh := range c.shard {
		if sh != nil && sh.node != nil {
			sh.node.Close()
		}
	}
	return first
}
