package cluster

// Buffer-reuse aliasing test for the cluster router: routerScratch objects,
// the shard-call worker pool, recycled cache payload buffers and EmbedInto
// destinations must never leak a reference into a returned result. Run
// under -race; mirrors the serve-layer test at the cluster boundary where
// cache hits (copied out of recyclable cache storage) and shard gathers
// (copied out of pooled scratch) merge into one output.

import (
	"sync"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

func TestClusterResultsImmutableUnderConcurrentEmbedUpdate(t *testing.T) {
	mc := testConfig(3, 2, 64, false, isa.RAdd)
	for _, strategy := range []Strategy{TableWise, RowWise} {
		t.Run(strategy.String(), func(t *testing.T) {
			c, _ := buildCluster(t, mc, Config{
				Nodes: 2, Strategy: strategy, CacheBytes: 16 << 10,
			})
			const (
				readers  = 3
				updaters = 2
				rounds   = 20
				batch    = 2
			)
			type held struct {
				got  []float32
				want []float32
			}
			results := make([][]held, readers)
			var wg sync.WaitGroup
			errCh := make(chan error, readers+updaters)
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					gen, _ := workload.NewZipfGenerator(mc.TableRows, 0.9, int64(g))
					for i := 0; i < rounds; i++ {
						rows := gen.Batch(mc.Tables, batch, mc.Reduction)
						// Alternate the allocating and the into-path: both
						// must return stable results.
						if i%2 == 0 {
							out, err := c.Embed(rows, batch)
							if err != nil {
								errCh <- err
								return
							}
							got := out.Data()
							results[g] = append(results[g], held{got: got, want: append([]float32(nil), got...)})
						} else {
							out, err := c.EmbedInto(nil, rows, batch)
							if err != nil {
								errCh <- err
								return
							}
							results[g] = append(results[g], held{got: out, want: append([]float32(nil), out...)})
						}
					}
				}(g)
			}
			for u := 0; u < updaters; u++ {
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					gen, _ := workload.NewZipfGenerator(mc.TableRows, 0.9, int64(50+u))
					for i := 0; i < rounds; i++ {
						grads := tensor.New(2, mc.EmbDim)
						grads.Fill(float32(u+1) * 0.5)
						up := runtime.TableUpdate{Table: (u + i) % mc.Tables, Rows: gen.Indices(2), Grads: grads}
						if err := c.ApplyUpdates([]runtime.TableUpdate{up}); err != nil {
							errCh <- err
							return
						}
					}
				}(u)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			for g, rs := range results {
				for i, h := range rs {
					for k := range h.got {
						if h.got[k] != h.want[k] {
							t.Fatalf("reader %d result %d mutated after return (elem %d)", g, i, k)
						}
					}
				}
			}
		})
	}
}
