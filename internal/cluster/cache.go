package cluster

import (
	"container/list"
	"sort"
	"sync"

	"tensordimm/internal/stats"
)

// rowCache is a byte-capacity-bounded LRU of hot embedding rows fronting
// one shard, keyed by flat local row. RecNMP (Ke et al., 2020) observes
// that production embedding traffic is heavily skewed, which makes a small
// cache disproportionately effective: a hit serves the row from the
// router's memory and skips the shard's near-memory gather path entirely —
// no sub-request row, no interconnect transfer.
//
// Capacity accounting charges the row payload only (dim x 4 bytes per
// entry); the map/list bookkeeping is not counted against the budget.
// All methods are safe for concurrent use; hit and miss counts are exposed
// as stats.Counters so reports can read them without taking the lock.
//
// Coherence. Online updates mutate shard tables underneath the cache, so
// the cache carries a version counter: invalidate removes the updated rows
// and bumps the version atomically, and putAt drops any insert whose
// caller-side snapshot predates the bump. A reader that gathered a row
// before an update therefore can never park the stale value in the cache
// after the update's invalidation pass — without the version check the
// read-gather / update-invalidate / read-put interleaving would cache
// pre-update data forever.
// Memory discipline. The hot serving path probes with getInto, which
// copies the row into a caller-provided buffer under the lock — the caller
// never holds a reference into the cache. Row payload buffers are recycled
// through a free list when entries are evicted or invalidated, so a warm
// cache inserts and evicts without allocating. get (tests only) returns the
// resident slice directly; it is valid only until the next insert or
// invalidation, which may recycle its storage.
type rowCache struct {
	mu       sync.Mutex
	capBytes int64
	rowBytes int64
	used     int64
	version  uint64     // bumped by every invalidate, guarded by mu
	order    *list.List // front = most recently used
	items    map[int]*list.Element
	freeVecs [][]float32 // recycled row payload buffers, guarded by mu
	// heat counts lifetime probes per flat local row (hits and misses
	// alike — a probe is the demand signal, residency is incidental),
	// guarded by mu. hotRows ranks it so a warm restart can repopulate the
	// cache with the Zipf head instead of waiting for traffic to refill it.
	heat []uint32

	hits          stats.Counter
	misses        stats.Counter
	invalidations stats.Counter
}

// cacheEntry is one resident row.
type cacheEntry struct {
	row int
	vec []float32
}

// newRowCache builds a cache of at most capBytes of dim-wide rows
// fronting a flat local table of localRows rows. It returns nil when
// capBytes is too small to hold even one row, which callers treat as
// "cache disabled".
func newRowCache(capBytes int64, dim, localRows int) *rowCache {
	rowBytes := int64(dim) * 4
	if capBytes < rowBytes {
		return nil
	}
	return &rowCache{
		capBytes: capBytes,
		rowBytes: rowBytes,
		order:    list.New(),
		items:    make(map[int]*list.Element),
		heat:     make([]uint32, localRows),
	}
}

// get returns the cached vector for a flat row and promotes it to most
// recently used, counting the probe as a hit or a miss. The returned slice
// aliases cache storage and is only valid until the next insert or
// invalidation (payload buffers are recycled); it exists for tests — the
// serving path uses getInto.
func (c *rowCache) get(row int) ([]float32, bool) {
	c.mu.Lock()
	el, ok := c.items[row]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	vec := el.Value.(*cacheEntry).vec
	c.mu.Unlock()
	c.hits.Inc()
	return vec, true
}

// getInto copies the cached vector for a flat row into dst (which must be
// rowBytes/4 long) and promotes it to most recently used, counting the
// probe as a hit or a miss. The copy happens under the cache lock, so the
// caller owns a stable snapshot without ever holding cache storage — the
// allocation-free hit path of the router.
func (c *rowCache) getInto(row int, dst []float32) bool {
	c.mu.Lock()
	if row < len(c.heat) {
		c.heat[row]++
	}
	el, ok := c.items[row]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return false
	}
	c.order.MoveToFront(el)
	copy(dst, el.Value.(*cacheEntry).vec)
	c.mu.Unlock()
	c.hits.Inc()
	return true
}

// snapshot returns the cache's current version for a later putAt. Callers
// take it before dispatching the gathers whose results they intend to
// cache.
func (c *rowCache) snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// putAt is put conditioned on the version still matching the caller's
// snapshot: if any invalidation happened since, the row being inserted may
// predate an update and is dropped.
func (c *rowCache) putAt(row int, vec []float32, ver uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != ver {
		return
	}
	c.insert(row, vec)
}

// invalidate removes the given flat rows (if resident) and bumps the cache
// version so every in-flight putAt taken before this call is dropped. It
// returns how many resident rows were actually removed; the count is also
// added to the invalidations counter.
func (c *rowCache) invalidate(rows []int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	n := 0
	for _, row := range rows {
		el, ok := c.items[row]
		if !ok {
			continue
		}
		c.order.Remove(el)
		delete(c.items, row)
		c.freeVecs = append(c.freeVecs, el.Value.(*cacheEntry).vec)
		c.used -= c.rowBytes
		n++
	}
	c.invalidations.Add(uint64(n))
	return n
}

// put inserts a private copy of vec for a flat row, evicting least recently
// used rows until the byte budget holds. Re-inserting a resident row only
// refreshes its recency.
func (c *rowCache) put(row int, vec []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(row, vec)
}

// insert is the lock-held body of put/putAt. Evicted rows donate their
// payload buffer to the free list, and new rows take one from it when
// available, so a cache at capacity churns without allocating payloads.
func (c *rowCache) insert(row int, vec []float32) {
	if el, ok := c.items[row]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.used+c.rowBytes > c.capBytes {
		back := c.order.Back()
		if back == nil {
			return // capBytes < rowBytes is rejected in newRowCache
		}
		c.order.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).row)
		c.freeVecs = append(c.freeVecs, back.Value.(*cacheEntry).vec)
		c.used -= c.rowBytes
	}
	var cp []float32
	if n := len(c.freeVecs); n > 0 {
		cp = c.freeVecs[n-1]
		c.freeVecs = c.freeVecs[:n-1]
	} else {
		cp = make([]float32, len(vec))
	}
	copy(cp, vec)
	c.items[row] = c.order.PushFront(&cacheEntry{row: row, vec: cp})
	c.used += c.rowBytes
}

// hotRows returns up to k flat local rows ranked by lifetime probe count,
// hottest first, skipping rows never probed. A cold path (drain-time
// persistence), so the copy-then-sort is fine.
func (c *rowCache) hotRows(k int) []int {
	c.mu.Lock()
	heat := make([]uint32, len(c.heat))
	copy(heat, c.heat)
	c.mu.Unlock()
	idx := make([]int, 0, len(heat))
	for r, h := range heat {
		if h > 0 {
			idx = append(idx, r)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		if heat[idx[i]] != heat[idx[j]] {
			return heat[idx[i]] > heat[idx[j]]
		}
		return idx[i] < idx[j] // deterministic tie-break
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// len returns the number of resident rows.
func (c *rowCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
