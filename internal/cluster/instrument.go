package cluster

import (
	"strconv"

	"tensordimm/internal/stats"
	"tensordimm/internal/telemetry"
)

// Instrument registers the cluster's series on a telemetry registry and
// recursively instruments each shard's serve.Server (labeled shard="N").
// Per the registry ownership rules (ARCHITECTURE.md, "Observability
// plane"), the cluster owns the cluster_* series: request/sample/failure
// counters, per-shard routing and cache counters, the request latency and
// modeled-fabric histograms, and the route/gather/merge tracer. Call
// once, before the traffic it should observe.
func (c *Cluster) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.Counter("tensordimm_cluster_requests_total", "requests completed successfully", c.requests.Load, labels...)
	reg.Counter("tensordimm_cluster_samples_total", "samples served across completed requests", c.samples.Load, labels...)
	reg.Counter("tensordimm_cluster_failures_total", "requests failed", c.failures.Load, labels...)
	reg.Counter("tensordimm_cluster_lookups_total", "embedding row lookups routed", c.lookups.Load, labels...)
	reg.Counter("tensordimm_cluster_updates_total", "update batches applied", c.updates.Load, labels...)
	reg.Counter("tensordimm_cluster_update_rows_total", "gradient rows routed across updates", c.updateRows.Load, labels...)
	c.tTotal = reg.Histogram("tensordimm_cluster_request_seconds", "wall-clock request latency through the router", labels...)
	c.tFabric = reg.Histogram("tensordimm_cluster_fabric_seconds", "modeled fabric transfer time per request", labels...)
	c.tracer = reg.Tracer("cluster", 0, []string{"route", "gather", "merge"}, labels...)

	for _, sh := range c.shard {
		lbl := append(append([]telemetry.Label{}, labels...), telemetry.L("shard", strconv.Itoa(sh.id)))
		reg.Counter("tensordimm_cluster_sub_requests_total", "sub-requests dispatched to this shard", sh.subRequests.Load, lbl...)
		reg.Counter("tensordimm_cluster_rows_gathered_total", "embedding rows gathered from this shard", sh.rowsGathered.Load, lbl...)
		reg.Counter("tensordimm_cluster_partial_bytes_total", "gathered row bytes shipped shard to router", sh.partialBytes.Load, lbl...)
		reg.Counter("tensordimm_cluster_index_bytes_total", "index list bytes shipped router to shard", sh.indexBytes.Load, lbl...)
		reg.Counter("tensordimm_cluster_sub_updates_total", "sub-updates routed to this shard", sh.subUpdates.Load, lbl...)
		reg.Counter("tensordimm_cluster_rows_updated_total", "gradient rows scattered near-memory on this shard", sh.rowsUpdated.Load, lbl...)
		reg.Counter("tensordimm_cluster_update_bytes_total", "update bytes shipped router to shard", sh.updateBytes.Load, lbl...)
		if cache := sh.cache; cache != nil {
			reg.Counter("tensordimm_cluster_cache_hits_total", "hot-row cache hits", cache.hits.Load, lbl...)
			reg.Counter("tensordimm_cluster_cache_misses_total", "hot-row cache misses", cache.misses.Load, lbl...)
			reg.Counter("tensordimm_cluster_cache_invalidations_total", "hot rows invalidated by updates", cache.invalidations.Load, lbl...)
			reg.Gauge("tensordimm_cluster_cache_rows", "hot rows resident in the cache", func() float64 {
				return float64(cache.len())
			}, lbl...)
			reg.Gauge("tensordimm_cluster_cache_hit_rate", "lifetime hot-row cache hit rate", func() float64 {
				return stats.HitRate(cache.hits.Load(), cache.misses.Load())
			}, lbl...)
		}
		if sh.srv != nil {
			sh.srv.Instrument(reg, lbl...)
		}
	}
}
