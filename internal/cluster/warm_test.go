package cluster

import (
	"testing"

	"tensordimm/internal/isa"
)

// TestUnlocateRoundTrip pins Unlocate as the exact inverse of Locate over
// every (table, row) coordinate, for both sharding strategies and a node
// count that does not divide the table height.
func TestUnlocateRoundTrip(t *testing.T) {
	const nodes, tables, rows = 3, 4, 301
	for _, strat := range []Strategy{TableWise, RowWise} {
		p := NewPlacement(strat, nodes, tables, rows)
		for tab := 0; tab < tables; tab++ {
			for r := 0; r < rows; r++ {
				s, flat := p.Locate(tab, r)
				gotTab, gotRow, err := p.Unlocate(s, flat)
				if err != nil {
					t.Fatalf("%v: unlocate(%d, %d): %v", strat, s, flat, err)
				}
				if gotTab != tab || gotRow != r {
					t.Fatalf("%v: locate(%d, %d) = (%d, %d), unlocate = (%d, %d)",
						strat, tab, r, s, flat, gotTab, gotRow)
				}
			}
		}
		// Every flat coordinate must also map back into range.
		for s := 0; s < nodes; s++ {
			for flat := 0; flat < p.LocalRows(s); flat++ {
				tab, r, err := p.Unlocate(s, flat)
				if err != nil {
					t.Fatalf("%v: unlocate(%d, %d): %v", strat, s, flat, err)
				}
				if tab < 0 || tab >= tables || r < 0 || r >= rows {
					t.Fatalf("%v: unlocate(%d, %d) = (%d, %d) out of model range",
						strat, s, flat, tab, r)
				}
			}
		}
		if _, _, err := p.Unlocate(-1, 0); err == nil {
			t.Fatalf("%v: want error for negative shard", strat)
		}
		if _, _, err := p.Unlocate(0, p.LocalRows(0)); err == nil {
			t.Fatalf("%v: want error for flat row past local table", strat)
		}
	}
}

// TestHotRowsRanking pins the heat accounting: rows probed more often rank
// earlier, unprobed rows never appear, and k truncates.
func TestHotRowsRanking(t *testing.T) {
	const dim = 16
	c := newRowCache(1024, dim, 64)
	buf := make([]float32, dim)
	for i := 0; i < 5; i++ {
		c.getInto(7, buf)
	}
	for i := 0; i < 3; i++ {
		c.getInto(2, buf)
	}
	c.getInto(40, buf)
	got := c.hotRows(10)
	want := []int{7, 2, 40}
	if len(got) != len(want) {
		t.Fatalf("hotRows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hotRows = %v, want %v", got, want)
		}
	}
	if got := c.hotRows(2); len(got) != 2 || got[0] != 7 || got[1] != 2 {
		t.Fatalf("hotRows(2) = %v, want [7 2]", got)
	}
	if got := newRowCache(1024, dim, 8).hotRows(4); len(got) != 0 {
		t.Fatalf("cold cache hotRows = %v, want empty", got)
	}
}

// TestWarmCacheHitsFirstRequest drives skewed traffic through one cluster,
// harvests its hot-row list, warms a second identical cluster with it, and
// asserts the warmed cluster serves the same head rows from cache on the
// very first request — the warm-restart contract.
func TestWarmCacheHitsFirstRequest(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	cfg := Config{Nodes: 2, CacheBytes: 64 * 1024}
	c1, m := buildCluster(t, mc, cfg)

	// Skewed read traffic: a handful of rows dominate.
	hot := [][]int{{1, 1, 5, 5}, {9, 9, 3, 3}}
	for i := 0; i < 20; i++ {
		if _, err := c1.Embed(hot, 2); err != nil {
			t.Fatal(err)
		}
	}
	var lists [][]int
	for s := 0; s < cfg.Nodes; s++ {
		rows := c1.HotRows(s, 16)
		if len(rows) == 0 {
			t.Fatalf("shard %d: no hot rows after skewed traffic", s)
		}
		lists = append(lists, rows)
	}
	if c1.HotRows(-1, 4) != nil || c1.HotRows(99, 4) != nil || c1.HotRows(0, 0) != nil {
		t.Fatal("out-of-range HotRows must return nil")
	}

	c2, err := New(m, c1.Config())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	for s, rows := range lists {
		// A stale out-of-range entry must be skipped, not fatal.
		n, err := c2.WarmCache(s, append([]int{1 << 20}, rows...))
		if err != nil {
			t.Fatalf("shard %d warm: %v", s, err)
		}
		if n != len(rows) {
			t.Fatalf("shard %d warmed %d rows, want %d", s, n, len(rows))
		}
	}
	if _, err := c2.WarmCache(99, []int{0}); err == nil {
		t.Fatal("want error for out-of-range shard")
	}
	if n, err := c2.WarmCache(0, nil); n != 0 || err != nil {
		t.Fatalf("empty warm = (%d, %v), want (0, nil)", n, err)
	}

	before := c2.Metrics().CacheHits
	got, err := c2.Embed(hot, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c2.GoldenEmbedding(hot, 2)
	if err != nil {
		t.Fatal(err)
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("warmed embedding differs from golden at %d", i)
		}
	}
	if hits := c2.Metrics().CacheHits - before; hits == 0 {
		t.Fatal("first post-warm request took zero cache hits")
	}
}
