package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("Geomean(2,8) = %v, want 4", g)
	}
	if !math.IsNaN(Geomean(nil)) {
		t.Fatal("Geomean(nil) must be NaN")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Fatal("Geomean with non-positive input must be NaN")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) must be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 12345.0)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "alpha") {
		t.Fatalf("rendered table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", `q"z`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `"x,y"`) || !strings.Contains(got, `"q""z"`) {
		t.Fatalf("CSV escaping wrong: %q", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("missing header: %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1234.5: "1234",
		42.42:  "42.4",
		1.2345: "1.234",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512 B",
		2048:      "2.0 KiB",
		128 << 30: "128.0 GiB",
		3 << 40:   "3.0 TiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:    "2.50 s",
		1e-3:   "1.00 ms",
		42e-6:  "42.0 us",
		100e-9: "100 ns",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
