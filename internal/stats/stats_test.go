package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("Geomean(2,8) = %v, want 4", g)
	}
	if !math.IsNaN(Geomean(nil)) {
		t.Fatal("Geomean(nil) must be NaN")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Fatal("Geomean with non-positive input must be NaN")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) must be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 12345.0)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "alpha") {
		t.Fatalf("rendered table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", `q"z`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `"x,y"`) || !strings.Contains(got, `"q""z"`) {
		t.Fatalf("CSV escaping wrong: %q", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("missing header: %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1234.5: "1234",
		42.42:  "42.4",
		1.2345: "1.234",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512 B",
		2048:      "2.0 KiB",
		128 << 30: "128.0 GiB",
		3 << 40:   "3.0 TiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:    "2.50 s",
		1e-3:   "1.00 ms",
		42e-6:  "42.0 us",
		100e-9: "100 ns",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // sorted: 1..5
	cases := map[float64]float64{
		0:   1,
		50:  3,
		100: 5,
		25:  2,
		75:  4,
	}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("Percentile 50 of {1,2} = %v, want 1.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty input must be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestLatencySummary(t *testing.T) {
	var l Latency
	if s := l.Summary(); s.Count != 0 || s.String() != "no observations" {
		t.Fatalf("empty summary: %+v", s)
	}
	for i := 1; i <= 100; i++ {
		l.Observe(float64(i) * 1e-3)
	}
	s := l.Summary()
	if s.Count != 100 || l.Count() != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1e-3 || s.Max != 100e-3 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 < 50e-3 || s.P50 > 51e-3 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 99e-3 || s.P99 > 100e-3 {
		t.Fatalf("p99 = %v", s.P99)
	}
	if math.Abs(s.Mean-50.5e-3) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestLatencyConcurrent(t *testing.T) {
	var l Latency
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(1e-6)
				_ = l.Summary()
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", l.Count())
	}
}

func TestLatencyReservoirBounded(t *testing.T) {
	var l Latency
	const total = ReservoirCap + 5000
	for i := 0; i < total; i++ {
		l.Observe(float64(i+1) * 1e-6)
	}
	if l.Count() != total {
		t.Fatalf("count = %d, want %d", l.Count(), total)
	}
	if len(l.obs) != ReservoirCap {
		t.Fatalf("retained %d observations, want capped at %d", len(l.obs), ReservoirCap)
	}
	s := l.Summary()
	if s.Count != total || s.Min != 1e-6 || s.Max != float64(total)*1e-6 {
		t.Fatalf("exact stats wrong: %+v", s)
	}
	// Uniform sample: the median estimate must land near the true median.
	trueP50 := float64(total) / 2 * 1e-6
	if s.P50 < trueP50*0.95 || s.P50 > trueP50*1.05 {
		t.Fatalf("sampled p50 = %v, true %v", s.P50, trueP50)
	}
}

func TestCounterAndHitRate(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value must read 0")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1010 {
		t.Fatalf("count = %d, want %d", got, 8*1010)
	}
	if HitRate(0, 0) != 0 {
		t.Fatal("empty hit rate must be 0")
	}
	if got := HitRate(3, 1); got != 0.75 {
		t.Fatalf("HitRate(3,1) = %g, want 0.75", got)
	}
}
