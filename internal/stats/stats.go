// Package stats provides the small reporting toolkit the experiment drivers
// share: geometric means, formatted ASCII tables (the rows/series the paper's
// figures plot), and CSV export for downstream plotting.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (NaN for empty or non-positive
// input, which always indicates a driver bug).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for small
// magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first). Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// FormatBytes renders a byte count in human units (binary).
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FormatSeconds renders a duration with an appropriate unit.
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1f us", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}
