// Package stats provides the small reporting toolkit the experiment drivers
// and the serving runtime share: geometric means, percentile latency
// recording, formatted ASCII tables (the rows/series the paper's figures
// plot), and CSV export for downstream plotting.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe event counter —
// cache hits and misses, routed sub-requests, transferred bytes. The zero
// value is ready to use.
type Counter struct{ n atomic.Uint64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// HitRate returns hits/(hits+misses), or 0 when nothing was counted, so
// cache reports never divide by zero.
func HitRate(hits, misses uint64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Geomean returns the geometric mean of xs (NaN for empty or non-positive
// input, which always indicates a driver bug).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs by linear
// interpolation between closest ranks. It returns NaN for empty input and
// does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ReservoirCap bounds how many observations a Latency recorder retains.
// Beyond it, reservoir sampling keeps a uniform sample, so percentiles stay
// accurate while memory and Summary cost stay constant for long-lived
// servers. Count, Mean, Min and Max remain exact over every observation.
const ReservoirCap = 1 << 16

// Latency records individual observation values (seconds) and reports
// percentile summaries. It is safe for concurrent use: the serving runtime
// records every request's latency from many worker goroutines.
type Latency struct {
	mu       sync.Mutex
	obs      []float64 // uniform sample of at most ReservoirCap observations
	n        int       // total observations
	sum      float64
	min, max float64
	rng      *rand.Rand
}

// Observe records one latency observation, in seconds.
func (l *Latency) Observe(seconds float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 || seconds < l.min {
		l.min = seconds
	}
	if l.n == 0 || seconds > l.max {
		l.max = seconds
	}
	l.n++
	l.sum += seconds
	if len(l.obs) < ReservoirCap {
		l.obs = append(l.obs, seconds)
		return
	}
	// Reservoir sampling (Algorithm R): keep each of the n observations
	// with probability ReservoirCap/n.
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(1))
	}
	if j := l.rng.Intn(l.n); j < ReservoirCap {
		l.obs[j] = seconds
	}
}

// Count returns the number of observations recorded so far.
func (l *Latency) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// LatencySummary is a percentile digest of recorded latencies, in seconds.
type LatencySummary struct {
	Count         int
	Mean          float64
	P50, P95, P99 float64
	Min, Max      float64
}

// Summary digests the recorded observations: exact count/mean/min/max,
// percentiles over the retained sample (exact until ReservoirCap
// observations, a uniform estimate beyond). A zero-observation recorder
// yields a zero summary (no NaNs), so reports can always be printed.
func (l *Latency) Summary() LatencySummary {
	l.mu.Lock()
	sorted := make([]float64, len(l.obs))
	copy(sorted, l.obs)
	s := LatencySummary{Count: l.n, Min: l.min, Max: l.max}
	if l.n > 0 {
		s.Mean = l.sum / float64(l.n)
	}
	l.mu.Unlock()
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 50)
	s.P95 = percentileSorted(sorted, 95)
	s.P99 = percentileSorted(sorted, 99)
	return s
}

// String renders the summary in human units.
func (s LatencySummary) String() string {
	if s.Count == 0 {
		return "no observations"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, FormatSeconds(s.Mean), FormatSeconds(s.P50),
		FormatSeconds(s.P95), FormatSeconds(s.P99), FormatSeconds(s.Max))
}

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for small
// magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first). Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// FormatBytes renders a byte count in human units (binary).
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FormatSeconds renders a duration with an appropriate unit.
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1f us", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}
