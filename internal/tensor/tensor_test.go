package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(3, 4)
	if x.Len() != 12 || x.Rank() != 2 || x.Dim(0) != 3 || x.Dim(1) != 4 {
		t.Fatalf("unexpected geometry: %v", x)
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Bytes() != 48 {
		t.Fatalf("Bytes = %d, want 48", x.Bytes())
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want error for wrong element count")
	}
	if _, err := FromSlice(nil, -1); err == nil {
		t.Fatal("want error for negative dim")
	}
	x, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", x.At(1, 0))
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	if x.Data()[1*12+2*4+3] != 42 {
		t.Fatal("row-major offset wrong")
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) should panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{10, 20, 30, 40}, 2, 2)

	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(sum, MustFromSlice([]float32{11, 22, 33, 44}, 2, 2)) {
		t.Fatalf("Add = %v", sum)
	}
	diff, _ := Sub(b, a)
	if !Equal(diff, MustFromSlice([]float32{9, 18, 27, 36}, 2, 2)) {
		t.Fatalf("Sub = %v", diff)
	}
	prod, _ := Mul(a, b)
	if !Equal(prod, MustFromSlice([]float32{10, 40, 90, 160}, 2, 2)) {
		t.Fatalf("Mul = %v", prod)
	}
	mx, _ := Max(a, MustFromSlice([]float32{4, 1, 3, 9}, 2, 2))
	if !Equal(mx, MustFromSlice([]float32{4, 2, 3, 9}, 2, 2)) {
		t.Fatalf("Max = %v", mx)
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	for name, f := range map[string]func(x, y *Tensor) (*Tensor, error){
		"Add": Add, "Sub": Sub, "Mul": Mul, "Max": Max,
	} {
		if _, err := f(a, b); err == nil {
			t.Errorf("%s: want shape error", name)
		}
	}
	if _, err := Sum(a, b); err == nil {
		t.Error("Sum: want shape error")
	}
	if _, err := Average(a, b); err == nil {
		t.Error("Average: want shape error")
	}
}

func TestAverageMatchesManual(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := MustFromSlice([]float32{3, 6}, 2)
	c := MustFromSlice([]float32{5, 10}, 2)
	avg, err := Average(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(avg, MustFromSlice([]float32{3, 6}, 2)) {
		t.Fatalf("Average = %v", avg)
	}
}

func TestSumEmptyAndSingle(t *testing.T) {
	if _, err := Sum(); err == nil {
		t.Fatal("Sum() should error")
	}
	if _, err := Average(); err == nil {
		t.Fatal("Average() should error")
	}
	a := MustFromSlice([]float32{7, 8}, 2)
	s, err := Sum(a)
	if err != nil || !Equal(s, a) {
		t.Fatalf("Sum(a) = %v, %v", s, err)
	}
}

func TestConcatRows(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{5, 6, 7, 8, 9, 10}, 2, 3)
	c, err := ConcatRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{1, 2, 5, 6, 7, 3, 4, 8, 9, 10}, 2, 5)
	if !Equal(c, want) {
		t.Fatalf("ConcatRows = %v, want %v", c, want)
	}
	if _, err := ConcatRows(a, New(3, 2)); err == nil {
		t.Fatal("want row-count mismatch error")
	}
	if _, err := ConcatRows(New(2)); err == nil {
		t.Fatal("want rank error")
	}
}

func TestMatMul(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
	if _, err := MatMul(a, a); err == nil {
		t.Fatal("want inner-dim error")
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := range a.Data() {
		a.Data()[i] = rng.Float32()
	}
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(c, a, 1e-6, 1e-6) {
		t.Fatal("A x I != A")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestRowAliases(t *testing.T) {
	a := New(2, 3)
	a.Row(1)[2] = 5
	if a.At(1, 2) != 5 {
		t.Fatal("Row must alias storage")
	}
}

func TestScaleAndFill(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	s := Scale(a, 2)
	if !Equal(s, MustFromSlice([]float32{2, 4, 6}, 3)) {
		t.Fatalf("Scale = %v", s)
	}
	a.Fill(7)
	for _, v := range a.Data() {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
}

func TestStringPreview(t *testing.T) {
	short := MustFromSlice([]float32{1, 2}, 2)
	if short.String() == "" {
		t.Fatal("empty String")
	}
	long := New(100)
	if long.String() == "" {
		t.Fatal("empty String for long tensor")
	}
}

// randVec builds a deterministic tensor from quick-check int seeds.
func randVec(seed int64, n int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := New(n)
	for i := range t.Data() {
		t.Data()[i] = rng.Float32()*8 - 4
	}
	return t
}

// Property: Add is commutative.
func TestQuickAddCommutative(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		a, b := randVec(seed1, 64), randVec(seed2, 64)
		x, _ := Add(a, b)
		y, _ := Add(b, a)
		return Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum over a permutation of inputs is unchanged (exact for float32
// here because Sum accumulates in the same order positionally; we verify
// pairwise swap which must commute elementwise).
func TestQuickMulCommutative(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		a, b := randVec(seed1, 48), randVec(seed2, 48)
		x, _ := Mul(a, b)
		y, _ := Mul(b, a)
		return Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AVERAGE of k identical vectors is (close to) the vector itself.
func TestQuickAverageIdentity(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%7) + 1
		v := randVec(seed, 32)
		ins := make([]*Tensor, k)
		for i := range ins {
			ins[i] = v
		}
		avg, err := Average(ins...)
		if err != nil {
			return false
		}
		return AllClose(avg, v, 1e-5, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ConcatRows width is the sum of operand widths and preserves rows.
func TestQuickConcatWidths(t *testing.T) {
	f := func(seed int64, w1Raw, w2Raw uint8) bool {
		w1, w2 := int(w1Raw%16)+1, int(w2Raw%16)+1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(3, w1), New(3, w2)
		for i := range a.Data() {
			a.Data()[i] = rng.Float32()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.Float32()
		}
		c, err := ConcatRows(a, b)
		if err != nil {
			return false
		}
		if c.Dim(0) != 3 || c.Dim(1) != w1+w2 {
			return false
		}
		// Spot-check boundary elements of each row.
		for r := 0; r < 3; r++ {
			if c.At(r, 0) != a.At(r, 0) || c.At(r, w1) != b.At(r, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	a := randVec(1, 256*256)
	x, _ := FromSlice(a.Data(), 256, 256)
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, x); err != nil {
			b.Fatal(err)
		}
	}
}
