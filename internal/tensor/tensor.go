// Package tensor provides the dense float32 tensor substrate used throughout
// the TensorDIMM reproduction: it is both the golden functional model for the
// near-memory tensor operations (GATHER/REDUCE/AVERAGE, Figure 9 of the paper)
// and the arithmetic backend for the DNN layers of the recommender models.
//
// Tensors are row-major, at most rank-2 in practice (the embedding layer and
// MLP stack only need matrices and vectors), but the type supports arbitrary
// rank for completeness.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
//
// The zero value is an empty tensor. Use New or FromSlice to construct one.
type Tensor struct {
	shape []int
	data  []float32
}

// ErrShape is returned (wrapped) when operand shapes are incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// New returns a zero-filled tensor of the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; the caller must not alias it unless that is intended.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dimension %d", ErrShape, d)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: shape %v needs %d elements, have %d", ErrShape, shape, n, len(data))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice but panics on error; for tests and literals.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Bytes returns the storage footprint in bytes (4 bytes per float32 element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Data returns the backing slice (row-major). Mutations are visible.
func (t *Tensor) Data() []float32 { return t.data }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Row returns row i of a rank-2 tensor as a slice aliasing the tensor storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank-2 tensor")
	}
	w := t.shape[1]
	return t.data[i*w : (i+1)*w]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// checkSame returns an error if operands differ in shape.
func checkSame(op string, a, b *Tensor) error {
	if !SameShape(a, b) {
		return fmt.Errorf("%w: %s %v vs %v", ErrShape, op, a.shape, b.shape)
	}
	return nil
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) (*Tensor, error) {
	if err := checkSame("add", a, b); err != nil {
		return nil, err
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) (*Tensor, error) {
	if err := checkSame("sub", a, b); err != nil {
		return nil, err
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) (*Tensor, error) {
	if err := checkSame("mul", a, b); err != nil {
		return nil, err
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out, nil
}

// Max returns elementwise max(a, b).
func Max(a, b *Tensor) (*Tensor, error) {
	if err := checkSame("max", a, b); err != nil {
		return nil, err
	}
	out := New(a.shape...)
	for i := range a.data {
		if a.data[i] >= b.data[i] {
			out.data[i] = a.data[i]
		} else {
			out.data[i] = b.data[i]
		}
	}
	return out, nil
}

// Scale returns t * s elementwise.
func Scale(t *Tensor, s float32) *Tensor {
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * s
	}
	return out
}

// Average returns the elementwise mean of the inputs, matching the AVERAGE
// instruction semantics of Figure 9(c): accumulate then divide by the count.
func Average(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, errors.New("tensor: Average of zero tensors")
	}
	for _, t := range ts[1:] {
		if err := checkSame("average", ts[0], t); err != nil {
			return nil, err
		}
	}
	out := New(ts[0].shape...)
	for _, t := range ts {
		for i := range t.data {
			out.data[i] += t.data[i]
		}
	}
	inv := 1 / float32(len(ts))
	for i := range out.data {
		out.data[i] *= inv
	}
	return out, nil
}

// Sum returns the elementwise sum of the inputs (N-way REDUCE with OP=add).
func Sum(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, errors.New("tensor: Sum of zero tensors")
	}
	for _, t := range ts[1:] {
		if err := checkSame("sum", ts[0], t); err != nil {
			return nil, err
		}
	}
	out := New(ts[0].shape...)
	for _, t := range ts {
		for i := range t.data {
			out.data[i] += t.data[i]
		}
	}
	return out, nil
}

// ConcatRows concatenates rank-2 tensors along dim 1 (the feature dimension),
// i.e. [B,d1],[B,d2] -> [B,d1+d2]. This is the "tensor concatenation" used to
// combine embedding features before the DNN (Figure 2, step 2).
func ConcatRows(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, errors.New("tensor: ConcatRows of zero tensors")
	}
	rows := ts[0].Dim(0)
	width := 0
	for _, t := range ts {
		if t.Rank() != 2 {
			return nil, fmt.Errorf("%w: ConcatRows requires rank-2, got rank %d", ErrShape, t.Rank())
		}
		if t.Dim(0) != rows {
			return nil, fmt.Errorf("%w: ConcatRows row counts %d vs %d", ErrShape, rows, t.Dim(0))
		}
		width += t.Dim(1)
	}
	out := New(rows, width)
	for r := 0; r < rows; r++ {
		dst := out.Row(r)
		off := 0
		for _, t := range ts {
			off += copy(dst[off:], t.Row(r))
		}
	}
	return out, nil
}

// MatMul returns a[M,K] x b[K,N] -> [M,N].
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: MatMul requires rank-2 operands", ErrShape)
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Row(p)
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// AllClose reports whether a and b match elementwise within atol+rtol*|b|.
func AllClose(a, b *Tensor, atol, rtol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		av, bv := float64(a.data[i]), float64(b.data[i])
		if math.IsNaN(av) || math.IsNaN(bv) {
			return false
		}
		if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
			return false
		}
	}
	return true
}

// Equal reports exact elementwise equality.
func Equal(a, b *Tensor) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact shape-and-preview format.
func (t *Tensor) String() string {
	const preview = 8
	n := len(t.data)
	if n <= preview {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%v ...+%d]", t.shape, t.data[:preview], n-preview)
}
