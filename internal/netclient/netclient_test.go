package netclient_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// echoBackend is a minimal deterministic Backend: element k of sample s,
// table t is rows[t][s*reduction] + k. Updates are recorded.
type echoBackend struct {
	upMu    sync.Mutex
	applied atomic.Int64
	rows    []int
}

// Geometry implements netserve.Backend.
func (b *echoBackend) Geometry() (int, int, int, int, int) { return 2, 2, 4, 100, 8 }

// EmbedInto implements netserve.Backend.
func (b *echoBackend) EmbedInto(dst []float32, rows [][]int, batch int) ([]float32, error) {
	const tables, reduction, dim = 2, 2, 4
	for s := 0; s < batch; s++ {
		for t := 0; t < tables; t++ {
			for k := 0; k < dim; k++ {
				dst[s*tables*dim+t*dim+k] = float32(rows[t][s*reduction] + k)
			}
		}
	}
	return dst, nil
}

// ApplyUpdates implements netserve.Backend.
func (b *echoBackend) ApplyUpdates(ups []runtime.TableUpdate) error {
	b.upMu.Lock()
	defer b.upMu.Unlock()
	for _, up := range ups {
		b.rows = append(b.rows, up.Rows...)
	}
	b.applied.Add(int64(len(ups)))
	return nil
}

// MetricsText implements netserve.Backend.
func (b *echoBackend) MetricsText() string { return "echo" }

func startEcho(t *testing.T) (*echoBackend, string) {
	t.Helper()
	b := &echoBackend{}
	srv, err := netserve.New(b, netserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return b, l.Addr().String()
}

func TestDialValidationAndFailures(t *testing.T) {
	if _, err := netclient.Dial("x", netclient.Config{Conns: -1}); err == nil {
		t.Fatal("negative Conns accepted")
	}
	if _, err := netclient.Dial("x", netclient.Config{RetryFor: -time.Second}); err == nil {
		t.Fatal("negative RetryFor accepted")
	}
	// Nothing listening, no retry budget: fail immediately.
	if _, err := netclient.Dial("127.0.0.1:1", netclient.Config{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial to a dead port succeeded")
	}
	// A frame limit below one maximal response is a config error.
	_, addr := startEcho(t)
	if _, err := netclient.Dial(addr, netclient.Config{MaxFrameBytes: 64}); err == nil ||
		!strings.Contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("undersized MaxFrameBytes: err = %v", err)
	}
}

// TestDialRetryOutlivesLateServer starts the server after the client
// begins dialing — the two-terminal / CI-smoke startup order.
func TestDialRetryOutlivesLateServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // free the port; the server will rebind it shortly

	srvReady := make(chan *netserve.Server, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		srv, err := netserve.New(&echoBackend{}, netserve.Config{})
		if err != nil {
			srvReady <- nil
			return
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			srv.Close()
			srvReady <- nil
			return
		}
		go srv.Serve(l)
		srvReady <- srv
	}()

	cl, err := netclient.Dial(addr, netclient.Config{RetryFor: 5 * time.Second})
	if err != nil {
		t.Fatalf("retrying dial failed: %v", err)
	}
	defer cl.Close()
	srv := <-srvReady
	if srv == nil {
		t.Fatal("late server failed to start")
	}
	defer srv.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestClientValidatesBeforeSending(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	good := func() [][]int {
		rows := make([][]int, g.Tables)
		for t := range rows {
			rows[t] = make([]int, g.Reduction)
		}
		return rows
	}
	if _, err := cl.EmbedInto(nil, good(), 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := cl.EmbedInto(nil, good(), g.MaxBatch+1); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := cl.EmbedInto(nil, good()[:1], 1); err == nil {
		t.Fatal("short table list accepted")
	}
	bad := good()
	bad[1] = bad[1][:1]
	if _, err := cl.EmbedInto(nil, bad, 1); err == nil {
		t.Fatal("short index list accepted")
	}
	neg := good()
	neg[0][0] = -1
	if _, err := cl.EmbedInto(nil, neg, 1); err == nil {
		t.Fatal("negative index accepted (would alias a huge uint32 on the wire)")
	}
	over := good()
	over[0][0] = g.TableRows
	if _, err := cl.EmbedInto(nil, over, 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}

	if err := cl.Update(nil); err == nil {
		t.Fatal("empty update batch accepted")
	}
	if err := cl.Update([]runtime.TableUpdate{{Table: 99, Rows: []int{1}, Grads: tensor.New(1, g.Dim)}}); err == nil {
		t.Fatal("out-of-range table accepted")
	}
	if err := cl.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{1}, Grads: tensor.New(2, g.Dim)}}); err == nil {
		t.Fatal("gradient shape mismatch accepted")
	}
	// A batch over the per-frame update count cap is refused client-side
	// (its uint16 count field would otherwise truncate into a corrupt
	// frame).
	big := make([]runtime.TableUpdate, wire.MaxUpdatesPerFrame+1)
	one := tensor.New(1, g.Dim)
	for i := range big {
		big[i] = runtime.TableUpdate{Table: 0, Rows: []int{1}, Grads: one}
	}
	if err := cl.Update(big); err == nil || !strings.Contains(err.Error(), "per-frame") {
		t.Fatalf("oversized update count: err = %v", err)
	}
}

// TestUpdateBatchOverFrameLimitRefusedClientSide pins that an update
// batch encoding beyond the frame limit is a clean per-call error instead
// of a server-side protocol violation that would tear down the shared
// connection.
func TestUpdateBatchOverFrameLimitRefusedClientSide(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{MaxFrameBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	rows := make([]int, g.MaxBatch*g.Reduction)
	ups := []runtime.TableUpdate{
		{Table: 0, Rows: rows, Grads: tensor.New(len(rows), g.Dim)},
		{Table: 1, Rows: rows, Grads: tensor.New(len(rows), g.Dim)},
	}
	if err := cl.Update(ups); err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("over-limit update batch: err = %v", err)
	}
	// The connection survived: the next call still works.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after refused batch: %v", err)
	}
}

func TestUpdateRoundTripAndMetrics(t *testing.T) {
	b, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	grads := tensor.New(3, g.Dim)
	if err := cl.Update([]runtime.TableUpdate{{Table: 1, Rows: []int{4, 4, 9}, Grads: grads}}); err != nil {
		t.Fatal(err)
	}
	if n := b.applied.Load(); n != 1 {
		t.Fatalf("%d updates applied, want 1", n)
	}
	b.upMu.Lock()
	gotRows := append([]int{}, b.rows...)
	b.upMu.Unlock()
	if len(gotRows) != 3 || gotRows[0] != 4 || gotRows[1] != 4 || gotRows[2] != 9 {
		t.Fatalf("update rows %v, want [4 4 9]", gotRows)
	}

	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "echo") {
		t.Fatalf("metrics text %q missing backend report", text)
	}
}

// TestConcurrentPipelinedClients hammers one client from many goroutines
// over a multi-connection pool and checks every response against the echo
// function — correlation under concurrency.
func TestConcurrentPipelinedClients(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	const goroutines, iters = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []float32
			rows := make([][]int, g.Tables)
			for t := range rows {
				rows[t] = make([]int, 2*g.Reduction)
			}
			for i := 0; i < iters; i++ {
				base := (w*iters + i) % (g.TableRows - 1)
				for t := range rows {
					for j := range rows[t] {
						rows[t][j] = base
					}
				}
				var err error
				dst, err = cl.EmbedInto(dst, rows, 2)
				if err != nil {
					errCh <- err
					return
				}
				for k := 0; k < g.Dim; k++ {
					if dst[k] != float32(base+k) {
						errCh <- errors.New("response correlated to the wrong request")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestServerGoneFailsPendingAndFutureCalls(t *testing.T) {
	b := &echoBackend{}
	srv, err := netserve.New(b, netserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	cl, err := netclient.Dial(l.Addr().String(), netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The connection is now gone; calls fail instead of hanging.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := cl.Ping(); err != nil {
			var se *netclient.ServerError
			if errors.As(err, &se) {
				t.Fatalf("ping after server death returned a server error frame: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pings kept succeeding after server Close")
		}
	}
	if _, err := cl.EmbedInto(nil, make([][]int, 2), 1); err == nil {
		t.Fatal("embed on a dead client succeeded")
	}
}

func TestClosedClientFailsFast(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // idempotent
	if err := cl.Ping(); err == nil {
		t.Fatal("ping on closed client succeeded")
	}
}

var _ error = (*netclient.ServerError)(nil)

// The geometry the client reports must satisfy the wire validator — it is
// what request validation derives from.
func TestGeometryIsValidated(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var g wire.Geometry = cl.Geometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
