package netclient_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tensordimm/internal/netclient"
)

// TestEmbedVariantsAndRestore exercises the convenience read paths and
// the snapshot-install client surface against the echo backend: Embed
// (fresh destination), StartEmbedBudget (explicit deadline budget on the
// wire), and Restore — whose client-side validation rejects malformed
// chunks before any round trip, and whose well-formed chunk surfaces the
// echo backend's lack of the optional RestoreBackend extension as a
// *ServerError.
func TestEmbedVariantsAndRestore(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	rows := make([][]int, g.Tables)
	for tb := range rows {
		rows[tb] = []int{7, 8, 21, 22}[:2*g.Reduction]
	}
	check := func(out []float32) {
		t.Helper()
		if len(out) != 2*g.Tables*g.Dim {
			t.Fatalf("embed returned %d floats, want %d", len(out), 2*g.Tables*g.Dim)
		}
		for s := 0; s < 2; s++ {
			for tb := 0; tb < g.Tables; tb++ {
				for k := 0; k < g.Dim; k++ {
					want := float32(rows[tb][s*g.Reduction] + k)
					if got := out[s*g.Tables*g.Dim+tb*g.Dim+k]; got != want {
						t.Fatalf("sample %d table %d elem %d = %g, want %g", s, tb, k, got, want)
					}
				}
			}
		}
	}

	out, err := cl.Embed(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	check(out)

	ca, err := cl.StartEmbedBudget(nil, rows, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ca.Done(); err != nil {
		t.Fatal(err)
	}
	check(ca.Dst())
	cl.Finish(ca)

	if n := cl.MaxRestoreRows(); n < 1 {
		t.Fatalf("MaxRestoreRows = %d, want >= 1", n)
	}
	vals := make([]float32, g.Dim)
	if _, err := cl.Restore(1, false, g.Tables, []int{0}, vals); err == nil {
		t.Fatal("Restore accepted an out-of-range table")
	}
	if _, err := cl.Restore(1, false, 0, nil, nil); err == nil {
		t.Fatal("Restore accepted an empty chunk")
	}
	if _, err := cl.Restore(1, false, 0, []int{-1}, vals); err == nil {
		t.Fatal("Restore accepted a negative row index")
	}
	if _, err := cl.Restore(1, false, 0, []int{0}, vals[:1]); err == nil {
		t.Fatal("Restore accepted a value slice shorter than rows*dim")
	}
	_, err = cl.Restore(1, true, 0, []int{3}, vals)
	var se *netclient.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("Restore against a non-RestoreBackend returned %v, want *ServerError", err)
	}
	if !strings.Contains(se.Error(), "server") {
		t.Fatalf("ServerError.Error() = %q, want it to name the server", se.Error())
	}

	de := &netclient.DeadlineError{Budget: time.Millisecond}
	if !strings.Contains(de.Error(), "1ms") {
		t.Fatalf("DeadlineError.Error() = %q, want it to carry the budget", de.Error())
	}
}
