// Package netclient is the Go client of the network serving plane: it
// speaks the internal/wire protocol to a netserve.Server over a small
// pool of TCP connections and exposes the same request surface as the
// in-process serving layers (EmbedInto, Update, Metrics, Ping), plus the
// replica-oriented extensions a router needs: sequenced updates (Sync),
// asynchronous embeds (StartEmbed, for hedged reads), and supervised
// reconnect with exponential backoff (Config.Reconnect).
//
// Requests pipeline: any number of goroutines may call into one Client
// concurrently, each request is stamped with a connection-local id,
// writes interleave on the shared connections, and a per-connection
// reader goroutine correlates responses — which arrive in completion
// order, not request order — back to their waiting callers.
//
// Sends coalesce: concurrent requests on one connection append their
// frames to a shared combining buffer and ring a doorbell; a dedicated
// per-connection flusher goroutine writes everything packed since its
// last pass as one BATCH super-frame (group commit), so one write
// syscall is amortized over a micro-batch while appenders never touch
// the socket. The flusher splits its buffer into multiple BATCH frames
// rather than exceed the frame-size limit the server's handshake
// announced. Responses arrive either plain or coalesced by the server's
// symmetric writer; the reader unpacks both.
//
// Connection lifecycle: without Reconnect, a lost connection is broken
// permanently and calls fail until the pool is exhausted — the original
// fail-fast contract. With Reconnect, each lost connection is redialed in
// the background with exponential backoff; the re-handshake must announce
// the geometry learned at Dial (a restarted server with a different model
// stays down), and the OnUp/OnDown hooks report transitions so a replica
// router can replay its update log before trusting the endpoint again.
//
// The steady-state EmbedInto path performs no heap allocations: calls
// (with their encode buffers and reply channels) are pooled, responses
// decode straight into the caller's destination buffer, and the reader
// reuses one receive buffer per connection (see ARCHITECTURE.md, "Memory
// discipline"). A caller that reuses its dst slice therefore drives the
// full network round trip allocation-free.
package netclient

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/runtime"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/wire"
)

// maxCoalesceBytes soft-caps one coalesced request frame so the combining
// buffer stays cache-sized even when the negotiated frame limits are
// generous; past it the flusher just emits another BATCH frame.
const maxCoalesceBytes = 256 << 10

// readBufBytes sizes the buffered reader on each connection, so one read
// syscall pulls in many pipelined (or coalesced) response frames.
const readBufBytes = 64 << 10

// Config tunes a client. The zero value of every field selects a
// documented default at Dial; negative values are invalid.
type Config struct {
	// Conns is the connection pool size. Requests round-robin across the
	// pool; more connections spread socket write contention at the cost of
	// server-side reader goroutines. Zero defaults to 1.
	Conns int
	// MaxFrameBytes caps one frame's wire size. Zero defaults to
	// wire.DefaultMaxFrameBytes. It must admit the largest response the
	// announced geometry can produce; Dial validates that.
	MaxFrameBytes int
	// DialTimeout bounds one TCP connect plus handshake attempt. Zero
	// defaults to 5 seconds.
	DialTimeout time.Duration
	// RetryFor keeps re-dialing a refused connection until this much time
	// has elapsed — the knob that lets a client start before its server
	// in scripted two-process runs. Zero means a single attempt.
	RetryFor time.Duration
	// Deadline is the per-request deadline budget stamped into EMBED and
	// UPDATE frames and enforced client-side: a request with no response
	// when the budget lapses fails with a *DeadlineError, and the late
	// response (if it ever arrives) is discarded. The budget restarts at
	// each hop (gRPC-style): the server measures its share from frame
	// arrival, so wire transit is neither double-counted nor deducted.
	// Zero means no deadline. StartEmbed callers enforce their own waits;
	// the stamped budget still lets the server shed the request once
	// expired.
	Deadline time.Duration

	// Reconnect supervises every pooled connection: when one is lost, a
	// background goroutine redials it with exponential backoff instead of
	// leaving it permanently broken. A reconnect handshake must announce
	// the geometry learned at Dial; a mismatching server (restarted with a
	// different model) is treated as still down and retried. False keeps
	// the original contract: a lost connection is broken for good.
	Reconnect bool
	// ReconnectMin is the first redial backoff. Zero defaults to 50ms.
	ReconnectMin time.Duration
	// ReconnectMax caps the doubling backoff. Zero defaults to 2s.
	ReconnectMax time.Duration
	// OnUp, if set, is called from the supervisor goroutine each time a
	// lost connection is re-established, with the server's new hello. A
	// replica router uses it to replay missed updates (the hello carries
	// the server's update sequence) before routing reads to the endpoint.
	// It is not called for the initial Dial connections — read Hello()
	// after Dial for those.
	OnUp func(wire.Hello)
	// OnDown, if set, is called from the supervisor goroutine each time a
	// live connection is lost, with the breaking error. Failed reconnect
	// attempts do not re-fire it; the endpoint is already down.
	OnDown func(error)
}

// ServerError is an error frame returned by the server, preserving the
// machine-readable code so callers can distinguish a shed request
// (wire.ErrOverloaded — retry after backoff) from a rejected or failed
// one.
type ServerError struct {
	// Code classifies the failure.
	Code wire.ErrCode
	// Msg is the server's human-readable detail.
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string { return fmt.Sprintf("netclient: server: %s: %s", e.Code, e.Msg) }

// DeadlineError reports a client-local deadline miss: the request's
// budget lapsed with no response on the wire, so the caller was released
// and the late response (if any) will be dropped on arrival. It is
// distinct from a *ServerError with wire.ErrDeadlineExceeded, which means
// the server itself shed the already-expired request; both end a request
// the caller has stopped caring about, and retrying with a fresh budget
// is safe.
type DeadlineError struct {
	// Budget is the deadline budget the request was stamped with.
	Budget time.Duration
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("netclient: deadline budget %v exhausted awaiting response", e.Budget)
}

// budgetMicros converts a deadline budget to its wire form: microseconds
// clamped to uint32, with a floor of 1µs for any positive budget so "has
// a deadline" survives the rounding (0 is reserved for "none").
func budgetMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	if us := d.Microseconds(); us >= math.MaxUint32 {
		return math.MaxUint32
	} else if us < 1 {
		return 1
	} else {
		return uint32(us)
	}
}

// Call is one in-flight request: the encode buffer, the destination the
// reader decodes an embed response into, and the reply channel. Calls are
// pooled per client; a Call is owned by its submitter from StartEmbed (or
// an internal submit) until Finish, with the reader borrowing it between
// correlation and reply delivery. A started Call must be waited on (Done)
// and then returned with Finish, even when abandoned — a hedged-read
// loser is finished by whoever drains its Done channel.
type Call struct {
	buf  []byte
	dst  []float32
	text string
	wu   []wire.Update
	seq  uint64
	done chan error
}

// Done returns the channel the call's result is delivered on: exactly one
// error (nil for success) per started call.
func (ca *Call) Done() <-chan error { return ca.done }

// Dst returns the destination buffer the response was decoded into,
// re-sliced to the response length. Valid after Done delivered nil.
func (ca *Call) Dst() []float32 { return ca.dst }

// clientConn is one pooled connection: the send combiner coalescing
// concurrent request frames into BATCH super-frames, the pending table
// correlating request ids to waiting calls, and a reader goroutine
// delivering responses.
type clientConn struct {
	nc net.Conn
	br *bufio.Reader
	// sendMax caps one coalesced frame: the smallest of this client's
	// limit, the server's announced limit, and the cache-friendly soft cap.
	sendMax int

	// The send combiner, guarded by sendMu: senders append their complete
	// frames behind sendBuf's BATCH-header headroom and nudge the flushCh
	// doorbell; the connection's flusher goroutine swaps the filled buffer
	// against spare and writes it out while senders keep appending. Keeping
	// the flusher off the senders' goroutines is what creates the
	// coalescing window — while the flusher is writing (or waiting its turn
	// on a busy scheduler), concurrent senders pack the other buffer.
	sendMu  sync.Mutex
	sendBuf []byte
	sendCnt int
	spare   []byte
	flushCh chan struct{}

	pmu     sync.Mutex
	pending map[uint64]*Call
	// abandoned ids belong to deadline-expired calls whose caller already
	// left: the reader drops their late responses instead of treating them
	// as protocol violations. Entries are removed when the straggler
	// arrives and die with the connection otherwise; the server answers
	// every admitted request, so the set cannot grow without bound.
	abandoned map[uint64]struct{}
	broken    error // set once the connection is unusable; guarded by pmu
	nextID    atomic.Uint64
	rdDone    chan struct{}
}

// connSlot is one position in the pool. Without Reconnect it holds its
// Dial-time connection forever; with Reconnect the supervisor swaps in a
// fresh connection after each loss (nil while down).
type connSlot struct {
	cur atomic.Pointer[clientConn]
}

// Client is a pooled, pipelined client of one serving endpoint. Create
// with Dial, submit from any number of goroutines, and Close when done.
type Client struct {
	cfg   Config
	addr  string
	geom  wire.Geometry
	width int
	hello atomic.Pointer[wire.Hello] // latest handshake observed

	slots     []*connSlot
	rr        atomic.Uint64
	callPool  sync.Pool
	timerPool sync.Pool // stopped *time.Timer, for deadline waits

	closed   atomic.Bool
	closeCh  chan struct{}
	superWG  sync.WaitGroup
	readerWG sync.WaitGroup
}

// Dial connects cfg.Conns connections to addr, performs the protocol
// handshake on each, and verifies every connection announces the same
// geometry. With cfg.RetryFor > 0 a refused connection is retried until
// the deadline, so a client may start before its server.
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.Conns < 0 || cfg.MaxFrameBytes < 0 || cfg.DialTimeout < 0 || cfg.RetryFor < 0 ||
		cfg.ReconnectMin < 0 || cfg.ReconnectMax < 0 || cfg.Deadline < 0 {
		return nil, fmt.Errorf("netclient: negative config (Conns %d, MaxFrameBytes %d, DialTimeout %v, RetryFor %v, ReconnectMin %v, ReconnectMax %v, Deadline %v)",
			cfg.Conns, cfg.MaxFrameBytes, cfg.DialTimeout, cfg.RetryFor, cfg.ReconnectMin, cfg.ReconnectMax, cfg.Deadline)
	}
	if cfg.Conns == 0 {
		cfg.Conns = 1
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = wire.DefaultMaxFrameBytes
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReconnectMin == 0 {
		cfg.ReconnectMin = 50 * time.Millisecond
	}
	if cfg.ReconnectMax == 0 {
		cfg.ReconnectMax = 2 * time.Second
	}
	if cfg.ReconnectMin > cfg.ReconnectMax {
		return nil, fmt.Errorf("netclient: ReconnectMin %v above ReconnectMax %v", cfg.ReconnectMin, cfg.ReconnectMax)
	}
	c := &Client{cfg: cfg, addr: addr, closeCh: make(chan struct{})}
	c.callPool.New = func() any { return &Call{done: make(chan error, 1)} }
	c.timerPool.New = func() any {
		tm := time.NewTimer(time.Hour)
		if !tm.Stop() {
			<-tm.C
		}
		return tm
	}
	deadline := time.Now().Add(cfg.RetryFor)
	for i := 0; i < cfg.Conns; i++ {
		cc, h, err := dialOne(addr, cfg, deadline)
		if err != nil {
			c.Close()
			return nil, err
		}
		if i == 0 {
			c.geom = h.Geom
			c.width = h.Geom.Width()
			maxResp := wire.HeaderBytes + 4*h.Geom.MaxBatch*c.width
			if cfg.MaxFrameBytes < maxResp {
				cc.nc.Close()
				c.Close()
				return nil, fmt.Errorf("netclient: MaxFrameBytes %d below the %d B a maximal response needs", cfg.MaxFrameBytes, maxResp)
			}
		} else if h.Geom != c.geom {
			cc.nc.Close()
			c.Close()
			return nil, fmt.Errorf("netclient: connection %d announced geometry %+v, connection 0 got %+v", i, h.Geom, c.geom)
		}
		hc := h
		c.hello.Store(&hc)
		slot := &connSlot{}
		slot.cur.Store(cc)
		c.slots = append(c.slots, slot)
		c.readerWG.Add(2)
		go c.readLoop(cc)
		go c.flushLoop(cc)
	}
	if cfg.Reconnect {
		for _, slot := range c.slots {
			c.superWG.Add(1)
			go c.supervise(slot)
		}
	}
	return c, nil
}

// dialOne establishes and handshakes a single connection, retrying
// refused connects until the deadline.
func dialOne(addr string, cfg Config, deadline time.Time) (*clientConn, wire.Hello, error) {
	for {
		nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err != nil {
			if time.Now().Before(deadline) {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			return nil, wire.Hello{}, fmt.Errorf("netclient: dial %s: %w", addr, err)
		}
		if _, err := nc.Write(wire.AppendClientHello(make([]byte, 0, 16), cfg.MaxFrameBytes)); err != nil {
			nc.Close()
			return nil, wire.Hello{}, fmt.Errorf("netclient: handshake write: %w", err)
		}
		br := bufio.NewReaderSize(nc, readBufBytes)
		h, _, err := wire.ReadServerHello(br, nil)
		if err != nil {
			nc.Close()
			return nil, wire.Hello{}, fmt.Errorf("netclient: handshake: %w", err)
		}
		return &clientConn{
			nc:        nc,
			br:        br,
			sendMax:   min(cfg.MaxFrameBytes, h.MaxFrameBytes, maxCoalesceBytes),
			sendBuf:   make([]byte, wire.BatchHeaderBytes, 32<<10),
			spare:     make([]byte, wire.BatchHeaderBytes, 32<<10),
			flushCh:   make(chan struct{}, 1),
			pending:   make(map[uint64]*Call),
			abandoned: make(map[uint64]struct{}),
			rdDone:    make(chan struct{}),
		}, h, nil
	}
}

// supervise watches one slot: when its connection dies, it reports the
// loss, then redials with exponential backoff until a server announcing
// the original geometry is back, swaps the fresh connection in, and
// reports it up. Runs until Close.
func (c *Client) supervise(slot *connSlot) {
	defer c.superWG.Done()
	for {
		cc := slot.cur.Load()
		if cc != nil {
			select {
			case <-cc.rdDone:
			case <-c.closeCh:
				return
			}
			slot.cur.Store(nil)
			if c.cfg.OnDown != nil {
				cc.pmu.Lock()
				err := cc.broken
				cc.pmu.Unlock()
				if err == nil {
					err = fmt.Errorf("netclient: connection lost")
				}
				c.cfg.OnDown(err)
			}
		}
		backoff := c.cfg.ReconnectMin
		for {
			select {
			case <-c.closeCh:
				return
			default:
			}
			ncc, h, err := dialOne(c.addr, c.cfg, time.Time{})
			if err == nil && h.Geom != c.geom {
				ncc.nc.Close()
				err = fmt.Errorf("netclient: reconnect handshake announced geometry %+v, want %+v", h.Geom, c.geom)
			}
			if err == nil {
				slot.cur.Store(ncc)
				hc := h
				c.hello.Store(&hc)
				c.readerWG.Add(2)
				go c.readLoop(ncc)
				go c.flushLoop(ncc)
				if c.cfg.OnUp != nil {
					c.cfg.OnUp(h)
				}
				break
			}
			select {
			case <-c.closeCh:
				return
			case <-time.After(jitter(backoff)):
			}
			if backoff *= 2; backoff > c.cfg.ReconnectMax {
				backoff = c.cfg.ReconnectMax
			}
		}
	}
}

// jitter spreads one reconnect sleep uniformly over [d/2, d): when a mass
// replica restart breaks every client at once, full-half jitter keeps
// their redial attempts from synchronizing into a thundering herd against
// the returning server, while never sleeping less than half the nominal
// backoff.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d-d/2)))
}

// Geometry returns the model geometry the server announced: everything a
// workload generator needs to build valid requests.
func (c *Client) Geometry() wire.Geometry { return c.geom }

// Hello returns the most recent server handshake, whose Role and
// UpdateSeq a replica router reads to size its catch-up replay.
func (c *Client) Hello() wire.Hello { return *c.hello.Load() }

// Healthy reports whether at least one pooled connection is currently
// live. With Reconnect it flips back to true once the supervisor has a
// fresh connection up; without it, false is permanent.
func (c *Client) Healthy() bool {
	if c.closed.Load() {
		return false
	}
	for _, slot := range c.slots {
		cc := slot.cur.Load()
		if cc == nil {
			continue
		}
		cc.pmu.Lock()
		broken := cc.broken
		cc.pmu.Unlock()
		if broken == nil {
			return true
		}
	}
	return false
}

// readLoop is one connection's reader goroutine: it decodes response
// frames, correlates each to its pending call by request id, and delivers
// the result. On a read error it fails every pending call and marks the
// connection broken.
func (c *Client) readLoop(cc *clientConn) {
	defer c.readerWG.Done()
	defer close(cc.rdDone)
	var buf []byte
	for {
		var op wire.Op
		var id uint64
		var payload []byte
		var err error
		op, id, payload, buf, err = wire.ReadFrame(cc.br, buf, c.cfg.MaxFrameBytes)
		if err != nil {
			cc.fail(fmt.Errorf("netclient: connection lost: %w", err))
			return
		}
		if op == wire.OpBatch {
			// A server-coalesced flush: deliver each packed response exactly
			// as if it had arrived alone.
			it, derr := wire.DecodeBatch(payload)
			if derr != nil {
				cc.fail(fmt.Errorf("netclient: corrupt response batch: %w", derr))
				return
			}
			for {
				sop, sid, sp, more := it.Next()
				if !more {
					break
				}
				if !cc.deliver(sop, sid, sp) {
					return
				}
			}
			if derr := it.Err(); derr != nil {
				cc.fail(fmt.Errorf("netclient: corrupt response batch: %w", derr))
				return
			}
			continue
		}
		if !cc.deliver(op, id, payload) {
			return
		}
	}
}

// deliver correlates one response frame to its pending call and hands it
// the result. It returns false when the frame proves the stream is not
// trustworthy, which fails the connection.
func (cc *clientConn) deliver(op wire.Op, id uint64, payload []byte) bool {
	cc.pmu.Lock()
	ca := cc.pending[id]
	if ca == nil {
		if _, ok := cc.abandoned[id]; ok {
			// A straggler for a deadline-expired call: its caller is gone,
			// so the response is dropped on the floor.
			delete(cc.abandoned, id)
			cc.pmu.Unlock()
			return true
		}
		cc.pmu.Unlock()
		// A response for nothing we sent: the stream is not trustworthy.
		cc.fail(fmt.Errorf("netclient: response for unknown request id %d", id))
		return false
	}
	delete(cc.pending, id)
	cc.pmu.Unlock()
	var res error
	switch op {
	case wire.OpEmbedResp:
		res = wire.DecodeEmbedResp(payload, ca.dst)
	case wire.OpUpdateResp, wire.OpPong:
		res = nil
	case wire.OpSyncResp:
		ca.seq, res = wire.DecodeSyncResp(payload)
	case wire.OpRestoreResp:
		ca.seq, res = wire.DecodeRestoreResp(payload)
	case wire.OpMetricsResp:
		ca.text = string(payload)
	case wire.OpError:
		code, msg, derr := wire.DecodeError(payload)
		if derr != nil {
			res = derr
		} else {
			res = &ServerError{Code: code, Msg: msg}
		}
	default:
		res = fmt.Errorf("netclient: unexpected response op %d", op)
	}
	ca.done <- res
	return true
}

// fail marks the connection broken and delivers err to every pending
// call.
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.broken == nil {
		cc.broken = err
	}
	pending := cc.pending
	cc.pending = make(map[uint64]*Call)
	cc.pmu.Unlock()
	cc.nc.Close()
	for _, ca := range pending {
		ca.done <- err
	}
}

// abandon removes a deadline-expired call from the pending table and
// tombstones its id, so the reader drops the late response instead of
// failing the connection. A false return means the reader already claimed
// the call — its result is on the way and the caller must take it.
func (cc *clientConn) abandon(id uint64) bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if _, ok := cc.pending[id]; !ok {
		return false
	}
	delete(cc.pending, id)
	cc.abandoned[id] = struct{}{}
	return true
}

// pick selects the connection for one request, skipping down or broken
// ones.
func (c *Client) pick() (*clientConn, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("netclient: client is closed")
	}
	start := int(c.rr.Add(1) - 1)
	for i := 0; i < len(c.slots); i++ {
		cc := c.slots[(start+i)%len(c.slots)].cur.Load()
		if cc == nil {
			continue
		}
		cc.pmu.Lock()
		broken := cc.broken
		cc.pmu.Unlock()
		if broken == nil {
			return cc, nil
		}
	}
	return nil, fmt.Errorf("netclient: every connection is down")
}

// start registers ca under id on cc and submits the frame in ca.buf to
// the send combiner. A non-nil return means the call was never registered
// (the connection was already broken) and nothing will arrive on done;
// after a nil return the result — including a write failure, which the
// reader delivers when it fails the pending set — arrives exactly once on
// done.
func (cc *clientConn) start(ca *Call, id uint64) error {
	cc.pmu.Lock()
	if cc.broken != nil {
		err := cc.broken
		cc.pmu.Unlock()
		return err
	}
	cc.pending[id] = ca
	cc.pmu.Unlock()
	cc.send(ca.buf)
	return nil
}

// send appends one complete frame to the combining buffer and rings the
// flusher's doorbell. The frame is copied, so the caller's buffer is
// free for reuse on return; the response (or a write failure, delivered
// through the failed pending set) arrives on the call's done channel.
func (cc *clientConn) send(frame []byte) {
	cc.sendMu.Lock()
	cc.sendBuf = append(cc.sendBuf, frame...)
	cc.sendCnt++
	cc.sendMu.Unlock()
	// Nonblocking ring: the one-slot doorbell latches the signal even when
	// the flusher is mid-pass, so no appended frame is ever stranded.
	select {
	case cc.flushCh <- struct{}{}:
	default:
	}
}

// flushLoop is one connection's dedicated flusher goroutine: on each
// doorbell ring it drains the combining buffer until it stays empty —
// swap the filled buffer against the spare, write it out (coalesced),
// repeat. It holds no lock while on the socket, so concurrent senders
// keep packing the other buffer; and because it is a separate goroutine,
// a busy scheduler naturally lets several senders append before the
// flusher gets the CPU — that is where the coalescing comes from. Runs
// until the connection's reader exits (socket dead or client closed) or
// a write fails.
func (c *Client) flushLoop(cc *clientConn) {
	defer c.readerWG.Done()
	for {
		select {
		case <-cc.flushCh:
		case <-cc.rdDone:
			return
		}
		for {
			cc.sendMu.Lock()
			if cc.sendCnt == 0 {
				cc.sendMu.Unlock()
				break
			}
			buf, cnt := cc.sendBuf, cc.sendCnt
			cc.sendBuf = cc.spare[:wire.BatchHeaderBytes]
			cc.spare = nil
			cc.sendCnt = 0
			cc.sendMu.Unlock()

			err := cc.writeCoalesced(buf, cnt)

			cc.sendMu.Lock()
			cc.spare = buf
			cc.sendMu.Unlock()
			if err != nil {
				// fail closes the socket, which wakes the reader; the reader
				// then fails everything pending — including the calls whose
				// frames were in buf — exactly once.
				cc.fail(fmt.Errorf("netclient: write: %w", err))
				return
			}
		}
	}
}

// writeCoalesced writes cnt packed frames (behind BatchHeaderBytes of
// headroom in buf): a single frame goes out plain, several go out as one
// or more BATCH super-frames, split wherever the next sub-frame would
// push a chunk past sendMax or the protocol's sub-frame cap. Splitting
// re-stamps each chunk's BATCH header into the bytes just before the
// chunk — those belong to an already-written chunk (or the headroom), so
// scribbling there is safe and the whole flush is zero-copy.
func (cc *clientConn) writeCoalesced(buf []byte, cnt int) error {
	if cnt == 1 {
		_, err := cc.nc.Write(buf[wire.BatchHeaderBytes:])
		return err
	}
	off := wire.BatchHeaderBytes // start of the first unwritten frame
	for cnt > 0 {
		end, n := off, 0
		for n < cnt && n < wire.MaxBatchSubFrames {
			flen := 4 + int(binary.LittleEndian.Uint32(buf[end:]))
			if n > 0 && (end-off)+flen+wire.BatchHeaderBytes > cc.sendMax {
				break
			}
			end += flen
			n++
		}
		var chunk []byte
		if n == 1 {
			chunk = buf[off:end]
		} else {
			chunk = wire.FinishBatch(buf[off-wire.BatchHeaderBytes:end], 0, n)
		}
		if _, err := cc.nc.Write(chunk); err != nil {
			return err
		}
		off = end
		cnt -= n
	}
	return nil
}

// roundTrip starts ca and waits for its response.
func (cc *clientConn) roundTrip(ca *Call, id uint64) error {
	if err := cc.start(ca, id); err != nil {
		return err
	}
	return <-ca.done
}

// await waits for a started call's result, bounded by the deadline budget
// when one is set: if the budget lapses first the call is abandoned (its
// late response will be dropped by the reader) and a *DeadlineError
// returned. The expiry timer is pooled, so the deadline-armed steady
// state stays allocation-free.
func (c *Client) await(cc *clientConn, ca *Call, id uint64, budget time.Duration) error {
	if budget <= 0 {
		return <-ca.done
	}
	tm := c.timerPool.Get().(*time.Timer)
	tm.Reset(budget)
	select {
	case err := <-ca.done:
		if !tm.Stop() {
			<-tm.C
		}
		c.timerPool.Put(tm)
		return err
	case <-tm.C:
		c.timerPool.Put(tm)
		if cc.abandon(id) {
			return &DeadlineError{Budget: budget}
		}
		// The reader claimed the call before it could be abandoned: the
		// result is in flight, take it.
		return <-ca.done
	}
}

// getCall fetches a pooled call.
func (c *Client) getCall() *Call { return c.callPool.Get().(*Call) }

// Finish clears a call's request state and recycles it. It must only be
// called after the call's Done channel delivered its result (or when the
// call was never started).
func (c *Client) Finish(ca *Call) {
	ca.dst, ca.text = nil, ""
	c.callPool.Put(ca)
}

// StartEmbed submits one embedding request without waiting: it validates,
// grows dst if needed (to batch*tables*dim), encodes, and writes the
// frame, returning the in-flight Call. The result is delivered exactly
// once on Done; after a nil result Dst holds the decoded response. The
// caller must Finish the call after draining Done — this is the hedged
// read primitive, where the losing attempt is drained and finished by a
// reaper. A non-nil error means nothing was sent (validation or no
// usable connection).
func (c *Client) StartEmbed(dst []float32, perTableRows [][]int, batch int) (*Call, error) {
	ca, _, _, err := c.startEmbed(dst, perTableRows, batch, c.cfg.Deadline)
	return ca, err
}

// StartEmbedBudget is StartEmbed with an explicit remaining deadline
// budget overriding Config.Deadline: the replica router stamps each
// failover or hedge attempt with the caller's remaining time, so a retry
// can never outlive the original request's budget. Zero means no
// deadline.
func (c *Client) StartEmbedBudget(dst []float32, perTableRows [][]int, batch int, budget time.Duration) (*Call, error) {
	ca, _, _, err := c.startEmbed(dst, perTableRows, batch, budget)
	return ca, err
}

// startEmbed validates, encodes, and submits one embedding request,
// returning the call plus the connection and id a deadline-bounded wait
// needs to abandon it.
func (c *Client) startEmbed(dst []float32, perTableRows [][]int, batch int, budget time.Duration) (*Call, *clientConn, uint64, error) {
	if err := c.validateRead(perTableRows, batch); err != nil {
		return nil, nil, 0, err
	}
	need := batch * c.width
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	cc, err := c.pick()
	if err != nil {
		return nil, nil, 0, err
	}
	ca := c.getCall()
	ca.dst = dst
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendEmbed(ca.buf[:0], id, budgetMicros(budget), perTableRows, batch, c.geom.Reduction)
	if err := cc.start(ca, id); err != nil {
		c.Finish(ca)
		return nil, nil, 0, err
	}
	return ca, cc, id, nil
}

// EmbedInto submits one embedding request of `batch` samples and decodes
// the pooled [batch, tables*dim] response row-major into dst, which is
// grown if its capacity is insufficient and returned re-sliced to exactly
// batch*tables*dim. The result is bit-identical to the backend's
// in-process EmbedInto. A caller that reuses the returned slice performs
// zero heap allocations in steady state. Safe for concurrent use (with
// distinct dst buffers).
func (c *Client) EmbedInto(dst []float32, perTableRows [][]int, batch int) ([]float32, error) {
	ca, cc, id, err := c.startEmbed(dst, perTableRows, batch, c.cfg.Deadline)
	if err != nil {
		return nil, err
	}
	err = c.await(cc, ca, id, c.cfg.Deadline)
	dst = ca.dst
	c.Finish(ca)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// Embed is EmbedInto with a freshly allocated destination.
func (c *Client) Embed(perTableRows [][]int, batch int) ([]float32, error) {
	return c.EmbedInto(nil, perTableRows, batch)
}

// validateRead checks one read submission against the announced geometry,
// so a malformed request fails here instead of costing a network round
// trip (and so the encoder's length derivations are always in range).
func (c *Client) validateRead(perTableRows [][]int, batch int) error {
	g := c.geom
	if batch <= 0 || batch > g.MaxBatch {
		return fmt.Errorf("netclient: batch %d out of range [1, %d]", batch, g.MaxBatch)
	}
	if len(perTableRows) != g.Tables {
		return fmt.Errorf("netclient: %d index lists for %d tables", len(perTableRows), g.Tables)
	}
	n := batch * g.Reduction
	for t, rows := range perTableRows {
		if len(rows) != n {
			return fmt.Errorf("netclient: table %d: %d rows for batch %d x reduction %d", t, len(rows), batch, g.Reduction)
		}
		for _, r := range rows {
			if r < 0 || r >= g.TableRows {
				return fmt.Errorf("netclient: table %d: row index %d out of range [0, %d)", t, r, g.TableRows)
			}
		}
	}
	return nil
}

// validateUpdates checks one update batch against the announced geometry
// and returns its encoded frame size given the payload overhead before
// the update list (4+2 B budget+count for UPDATE, 8+2 B seq+count for
// SYNC).
func (c *Client) validateUpdates(ups []runtime.TableUpdate, overhead int) (int, error) {
	g := c.geom
	if len(ups) == 0 {
		return 0, fmt.Errorf("netclient: empty update batch")
	}
	if len(ups) > wire.MaxUpdatesPerFrame {
		return 0, fmt.Errorf("netclient: %d updates exceed the %d-per-frame protocol cap; split the batch",
			len(ups), wire.MaxUpdatesPerFrame)
	}
	frameBytes := wire.HeaderBytes + overhead
	for i, up := range ups {
		if up.Table < 0 || up.Table >= g.Tables {
			return 0, fmt.Errorf("netclient: update %d: table %d out of range [0, %d)", i, up.Table, g.Tables)
		}
		if len(up.Rows) == 0 || len(up.Rows) > g.MaxBatch*g.Reduction {
			return 0, fmt.Errorf("netclient: update %d: %d rows out of range [1, %d]", i, len(up.Rows), g.MaxBatch*g.Reduction)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= g.TableRows {
				return 0, fmt.Errorf("netclient: update %d: row index %d out of range [0, %d)", i, r, g.TableRows)
			}
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != g.Dim {
			return 0, fmt.Errorf("netclient: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), g.Dim)
		}
		frameBytes += 8 + 4*len(up.Rows) + 4*len(up.Rows)*g.Dim
	}
	// A frame over the limit would be rejected server-side as a protocol
	// violation, tearing down the shared connection and failing every
	// pipelined call on it — so it is refused here as a per-call error.
	if frameBytes > c.cfg.MaxFrameBytes {
		return 0, fmt.Errorf("netclient: update batch encodes to %d B, above the %d B frame limit; split the batch",
			frameBytes, c.cfg.MaxFrameBytes)
	}
	return frameBytes, nil
}

// borrowUpdates views ups as wire updates in the call's reused slice.
func (ca *Call) borrowUpdates(ups []runtime.TableUpdate) {
	if cap(ca.wu) < len(ups) {
		ca.wu = make([]wire.Update, len(ups))
	}
	ca.wu = ca.wu[:len(ups)]
	for i, up := range ups {
		ca.wu[i] = wire.Update{Table: up.Table, Rows: up.Rows, Grads: up.Grads.Data()}
	}
}

// releaseUpdates drops the borrowed views before pooling.
func (ca *Call) releaseUpdates() {
	for i := range ca.wu {
		ca.wu[i] = wire.Update{}
	}
}

// Update submits a gradient-update batch, mirroring
// serve.Server.Update / cluster.ApplyUpdates: when it returns nil the
// update is applied server-side and every later read observes it. Safe
// for concurrent use.
func (c *Client) Update(ups []runtime.TableUpdate) error {
	if _, err := c.validateUpdates(ups, 6); err != nil {
		return err
	}
	cc, err := c.pick()
	if err != nil {
		return err
	}
	ca := c.getCall()
	ca.borrowUpdates(ups)
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendUpdate(ca.buf[:0], id, budgetMicros(c.cfg.Deadline), ca.wu)
	ca.releaseUpdates()
	if err = cc.start(ca, id); err == nil {
		err = c.await(cc, ca, id, c.cfg.Deadline)
	}
	c.Finish(ca)
	return err
}

// Sync submits a sequenced update batch: "this is update number seq"
// (zero-based over the server's life). The server applies it only when
// seq matches its own applied count, acknowledges an already-applied seq
// without reapplying, and rejects a gap — which is what makes replaying
// an update log through reconnects exactly-once. It returns the server's
// applied count after the call: seq+1 whether this frame applied or was
// a replay of something already absorbed. Safe for concurrent use,
// though replay order is the caller's contract.
func (c *Client) Sync(seq uint64, ups []runtime.TableUpdate) (uint64, error) {
	if _, err := c.validateUpdates(ups, 10); err != nil {
		return 0, err
	}
	cc, err := c.pick()
	if err != nil {
		return 0, err
	}
	ca := c.getCall()
	ca.borrowUpdates(ups)
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendSync(ca.buf[:0], id, seq, ca.wu)
	ca.releaseUpdates()
	err = cc.roundTrip(ca, id)
	srvSeq := ca.seq
	c.Finish(ca)
	if err != nil {
		return 0, err
	}
	return srvSeq, nil
}

// MaxRestoreRows reports the largest row count one Restore call may
// carry: the geometry's per-frame update cap, shrunk if needed so the
// encoded frame fits both this client's frame limit and the one the
// server's handshake announced. A snapshot installer chunks by it.
func (c *Client) MaxRestoreRows() int {
	g := c.geom
	n := g.MaxBatch * g.Reduction
	limit := min(c.cfg.MaxFrameBytes, c.Hello().MaxFrameBytes)
	if fit := (limit - wire.HeaderBytes - 17) / (4 + 4*g.Dim); fit < n {
		n = fit
	}
	return max(n, 1)
}

// Restore streams one chunk of a full-table snapshot install: absolute
// values for len(rows) rows of one table, stamped with the snapshot's
// sequence number. Chunks with commit false install rows without moving
// the server's applied counter; the snapshot's final chunk sets commit,
// which fast-forwards the counter to seq — after that, catch-up replay
// continues from seq with Sync. The server rejects a snapshot older than
// its applied state. Returns the server's applied count after the call.
// Safe for concurrent use, though chunk order is the caller's contract.
func (c *Client) Restore(seq uint64, commit bool, table int, rows []int, vals []float32) (uint64, error) {
	g := c.geom
	if table < 0 || table >= g.Tables {
		return 0, fmt.Errorf("netclient: restore: table %d out of range [0, %d)", table, g.Tables)
	}
	if n := c.MaxRestoreRows(); len(rows) == 0 || len(rows) > n {
		return 0, fmt.Errorf("netclient: restore: %d rows out of range [1, %d]; chunk the install", len(rows), n)
	}
	for _, r := range rows {
		if r < 0 || r >= g.TableRows {
			return 0, fmt.Errorf("netclient: restore: row index %d out of range [0, %d)", r, g.TableRows)
		}
	}
	if len(vals) != len(rows)*g.Dim {
		return 0, fmt.Errorf("netclient: restore: %d values for %d rows of dim %d", len(vals), len(rows), g.Dim)
	}
	cc, err := c.pick()
	if err != nil {
		return 0, err
	}
	ca := c.getCall()
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendRestore(ca.buf[:0], id, seq, commit, table, rows, vals)
	err = cc.roundTrip(ca, id)
	srvSeq := ca.seq
	c.Finish(ca)
	if err != nil {
		return 0, err
	}
	return srvSeq, nil
}

// Metrics fetches the server's human-readable metrics report: the
// backend's own report (serve or cluster metrics) followed by the network
// plane's. The machine-parseable section riding the same response is
// stripped; use MetricsSnapshot to get both.
func (c *Client) Metrics() (string, error) {
	_, text, err := c.MetricsSnapshot()
	return text, err
}

// MetricsSnapshot fetches the server's metrics in both forms the METRICS
// op carries since wire revision 6: the versioned telemetry snapshot
// (exact counters, gauges, and latency histograms — what a driver or
// smoke test asserts against) and the human text report. The snapshot is
// nil when the server has no telemetry registry wired; an uninstrumented
// server still snapshots as an empty, well-formed section.
func (c *Client) MetricsSnapshot() (*telemetry.Snapshot, string, error) {
	cc, err := c.pick()
	if err != nil {
		return nil, "", err
	}
	ca := c.getCall()
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendFrame(ca.buf[:0], wire.OpMetrics, id, nil)
	err = cc.roundTrip(ca, id)
	payload := ca.text
	c.Finish(ca)
	if err != nil {
		return nil, "", err
	}
	return telemetry.DecodeWirePayload([]byte(payload))
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	ca := c.getCall()
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendFrame(ca.buf[:0], wire.OpPing, id, nil)
	err = cc.roundTrip(ca, id)
	c.Finish(ca)
	return err
}

// Close stops the reconnect supervisors, closes every connection, and
// waits for the readers to finish; calls still in flight fail with a
// connection-lost error. It is idempotent.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.closeCh)
	c.superWG.Wait()
	for _, slot := range c.slots {
		if cc := slot.cur.Load(); cc != nil {
			cc.fail(fmt.Errorf("netclient: client closed"))
		}
	}
	c.readerWG.Wait()
	return nil
}
