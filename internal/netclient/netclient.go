// Package netclient is the Go client of the network serving plane: it
// speaks the internal/wire protocol to a netserve.Server over a small
// pool of TCP connections and exposes the same request surface as the
// in-process serving layers (EmbedInto, Update, Metrics, Ping).
//
// Requests pipeline: any number of goroutines may call into one Client
// concurrently, each request is stamped with a connection-local id,
// writes interleave on the shared connections, and a per-connection
// reader goroutine correlates responses — which arrive in completion
// order, not request order — back to their waiting callers.
//
// The steady-state EmbedInto path performs no heap allocations: calls
// (with their encode buffers and reply channels) are pooled, responses
// decode straight into the caller's destination buffer, and the reader
// reuses one receive buffer per connection (see ARCHITECTURE.md, "Memory
// discipline"). A caller that reuses its dst slice therefore drives the
// full network round trip allocation-free.
package netclient

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/runtime"
	"tensordimm/internal/wire"
)

// Config tunes a client. The zero value of every field selects a
// documented default at Dial; negative values are invalid.
type Config struct {
	// Conns is the connection pool size. Requests round-robin across the
	// pool; more connections spread socket write contention at the cost of
	// server-side reader goroutines. Zero defaults to 1.
	Conns int
	// MaxFrameBytes caps one frame's wire size. Zero defaults to
	// wire.DefaultMaxFrameBytes. It must admit the largest response the
	// announced geometry can produce; Dial validates that.
	MaxFrameBytes int
	// DialTimeout bounds one TCP connect plus handshake attempt. Zero
	// defaults to 5 seconds.
	DialTimeout time.Duration
	// RetryFor keeps re-dialing a refused connection until this much time
	// has elapsed — the knob that lets a client start before its server
	// in scripted two-process runs. Zero means a single attempt.
	RetryFor time.Duration
}

// ServerError is an error frame returned by the server, preserving the
// machine-readable code so callers can distinguish a shed request
// (wire.ErrOverloaded — retry after backoff) from a rejected or failed
// one.
type ServerError struct {
	// Code classifies the failure.
	Code wire.ErrCode
	// Msg is the server's human-readable detail.
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string { return fmt.Sprintf("netclient: server: %s: %s", e.Code, e.Msg) }

// call is one in-flight request: the encode buffer, the destination the
// reader decodes an embed response into, and the reply channel. Calls are
// pooled per client; a call is owned by its submitter from Get to Put,
// with the reader borrowing it between correlation and reply.
type call struct {
	buf  []byte
	dst  []float32
	text string
	wu   []wire.Update
	done chan error
}

// clientConn is one pooled connection: a write lock serializing frame
// writes, the pending table correlating request ids to waiting calls, and
// a reader goroutine delivering responses.
type clientConn struct {
	nc      net.Conn
	wmu     sync.Mutex
	pmu     sync.Mutex
	pending map[uint64]*call
	broken  error // set once the connection is unusable; guarded by pmu
	nextID  atomic.Uint64
	rdDone  chan struct{}
}

// Client is a pooled, pipelined client of one serving endpoint. Create
// with Dial, submit from any number of goroutines, and Close when done.
type Client struct {
	cfg   Config
	geom  wire.Geometry
	width int

	conns    []*clientConn
	rr       atomic.Uint64
	callPool sync.Pool

	closed atomic.Bool
}

// Dial connects cfg.Conns connections to addr, performs the protocol
// handshake on each, and verifies every connection announces the same
// geometry. With cfg.RetryFor > 0 a refused connection is retried until
// the deadline, so a client may start before its server.
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.Conns < 0 || cfg.MaxFrameBytes < 0 || cfg.DialTimeout < 0 || cfg.RetryFor < 0 {
		return nil, fmt.Errorf("netclient: negative config (Conns %d, MaxFrameBytes %d, DialTimeout %v, RetryFor %v)",
			cfg.Conns, cfg.MaxFrameBytes, cfg.DialTimeout, cfg.RetryFor)
	}
	if cfg.Conns == 0 {
		cfg.Conns = 1
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = wire.DefaultMaxFrameBytes
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{cfg: cfg}
	c.callPool.New = func() any { return &call{done: make(chan error, 1)} }
	deadline := time.Now().Add(cfg.RetryFor)
	for i := 0; i < cfg.Conns; i++ {
		cc, g, err := dialOne(addr, cfg, deadline)
		if err != nil {
			c.Close()
			return nil, err
		}
		if i == 0 {
			c.geom = g
			c.width = g.Width()
			maxResp := wire.HeaderBytes + 4*g.MaxBatch*c.width
			if cfg.MaxFrameBytes < maxResp {
				cc.nc.Close()
				c.Close()
				return nil, fmt.Errorf("netclient: MaxFrameBytes %d below the %d B a maximal response needs", cfg.MaxFrameBytes, maxResp)
			}
		} else if g != c.geom {
			cc.nc.Close()
			c.Close()
			return nil, fmt.Errorf("netclient: connection %d announced geometry %+v, connection 0 got %+v", i, g, c.geom)
		}
		c.conns = append(c.conns, cc)
		go c.readLoop(cc)
	}
	return c, nil
}

// dialOne establishes and handshakes a single connection, retrying
// refused connects until the deadline.
func dialOne(addr string, cfg Config, deadline time.Time) (*clientConn, wire.Geometry, error) {
	for {
		nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err != nil {
			if time.Now().Before(deadline) {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			return nil, wire.Geometry{}, fmt.Errorf("netclient: dial %s: %w", addr, err)
		}
		if _, err := nc.Write(wire.AppendClientHello(make([]byte, 0, 8))); err != nil {
			nc.Close()
			return nil, wire.Geometry{}, fmt.Errorf("netclient: handshake write: %w", err)
		}
		g, err := wire.ReadServerHello(nc)
		if err != nil {
			nc.Close()
			return nil, wire.Geometry{}, fmt.Errorf("netclient: handshake: %w", err)
		}
		return &clientConn{
			nc:      nc,
			pending: make(map[uint64]*call),
			rdDone:  make(chan struct{}),
		}, g, nil
	}
}

// Geometry returns the model geometry the server announced: everything a
// workload generator needs to build valid requests.
func (c *Client) Geometry() wire.Geometry { return c.geom }

// readLoop is one connection's reader goroutine: it decodes response
// frames, correlates each to its pending call by request id, and delivers
// the result. On a read error it fails every pending call and marks the
// connection broken.
func (c *Client) readLoop(cc *clientConn) {
	defer close(cc.rdDone)
	var buf []byte
	for {
		var op wire.Op
		var id uint64
		var payload []byte
		var err error
		op, id, payload, buf, err = wire.ReadFrame(cc.nc, buf, c.cfg.MaxFrameBytes)
		if err != nil {
			cc.fail(fmt.Errorf("netclient: connection lost: %w", err))
			return
		}
		cc.pmu.Lock()
		ca := cc.pending[id]
		delete(cc.pending, id)
		cc.pmu.Unlock()
		if ca == nil {
			// A response for nothing we sent: the stream is not trustworthy.
			cc.fail(fmt.Errorf("netclient: response for unknown request id %d", id))
			return
		}
		var res error
		switch op {
		case wire.OpEmbedResp:
			res = wire.DecodeEmbedResp(payload, ca.dst)
		case wire.OpUpdateResp, wire.OpPong:
			res = nil
		case wire.OpMetricsResp:
			ca.text = string(payload)
		case wire.OpError:
			code, msg, derr := wire.DecodeError(payload)
			if derr != nil {
				res = derr
			} else {
				res = &ServerError{Code: code, Msg: msg}
			}
		default:
			res = fmt.Errorf("netclient: unexpected response op %d", op)
		}
		ca.done <- res
	}
}

// fail marks the connection broken and delivers err to every pending
// call.
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.broken == nil {
		cc.broken = err
	}
	pending := cc.pending
	cc.pending = make(map[uint64]*call)
	cc.pmu.Unlock()
	cc.nc.Close()
	for _, ca := range pending {
		ca.done <- err
	}
}

// pick selects the connection for one request, skipping broken ones.
func (c *Client) pick() (*clientConn, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("netclient: client is closed")
	}
	start := int(c.rr.Add(1) - 1)
	for i := 0; i < len(c.conns); i++ {
		cc := c.conns[(start+i)%len(c.conns)]
		cc.pmu.Lock()
		broken := cc.broken
		cc.pmu.Unlock()
		if broken == nil {
			return cc, nil
		}
	}
	return nil, fmt.Errorf("netclient: every connection is broken")
}

// roundTrip registers ca under a fresh id on cc, writes the frame in
// ca.buf (which must already carry the id returned by stamp), and waits
// for the response.
func (cc *clientConn) roundTrip(ca *call, id uint64) error {
	cc.pmu.Lock()
	if cc.broken != nil {
		err := cc.broken
		cc.pmu.Unlock()
		return err
	}
	cc.pending[id] = ca
	cc.pmu.Unlock()

	cc.wmu.Lock()
	_, werr := cc.nc.Write(ca.buf)
	cc.wmu.Unlock()
	if werr != nil {
		// The reader will fail everything pending (including this call) when
		// it notices; waiting on done keeps ownership single-threaded.
		cc.fail(fmt.Errorf("netclient: write: %w", werr))
	}
	return <-ca.done
}

// getCall fetches a pooled call.
func (c *Client) getCall() *call { return c.callPool.Get().(*call) }

// putCall clears a call's request state and recycles it.
func (c *Client) putCall(ca *call) {
	ca.dst, ca.text = nil, ""
	c.callPool.Put(ca)
}

// EmbedInto submits one embedding request of `batch` samples and decodes
// the pooled [batch, tables*dim] response row-major into dst, which is
// grown if its capacity is insufficient and returned re-sliced to exactly
// batch*tables*dim. The result is bit-identical to the backend's
// in-process EmbedInto. A caller that reuses the returned slice performs
// zero heap allocations in steady state. Safe for concurrent use (with
// distinct dst buffers).
func (c *Client) EmbedInto(dst []float32, perTableRows [][]int, batch int) ([]float32, error) {
	if err := c.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	need := batch * c.width
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	cc, err := c.pick()
	if err != nil {
		return nil, err
	}
	ca := c.getCall()
	ca.dst = dst
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendEmbed(ca.buf[:0], id, perTableRows, batch, c.geom.Reduction)
	err = cc.roundTrip(ca, id)
	c.putCall(ca)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// Embed is EmbedInto with a freshly allocated destination.
func (c *Client) Embed(perTableRows [][]int, batch int) ([]float32, error) {
	return c.EmbedInto(nil, perTableRows, batch)
}

// validateRead checks one read submission against the announced geometry,
// so a malformed request fails here instead of costing a network round
// trip (and so the encoder's length derivations are always in range).
func (c *Client) validateRead(perTableRows [][]int, batch int) error {
	g := c.geom
	if batch <= 0 || batch > g.MaxBatch {
		return fmt.Errorf("netclient: batch %d out of range [1, %d]", batch, g.MaxBatch)
	}
	if len(perTableRows) != g.Tables {
		return fmt.Errorf("netclient: %d index lists for %d tables", len(perTableRows), g.Tables)
	}
	n := batch * g.Reduction
	for t, rows := range perTableRows {
		if len(rows) != n {
			return fmt.Errorf("netclient: table %d: %d rows for batch %d x reduction %d", t, len(rows), batch, g.Reduction)
		}
		for _, r := range rows {
			if r < 0 || r >= g.TableRows {
				return fmt.Errorf("netclient: table %d: row index %d out of range [0, %d)", t, r, g.TableRows)
			}
		}
	}
	return nil
}

// Update submits a gradient-update batch, mirroring
// serve.Server.Update / cluster.ApplyUpdates: when it returns nil the
// update is applied server-side and every later read observes it. Safe
// for concurrent use.
func (c *Client) Update(ups []runtime.TableUpdate) error {
	g := c.geom
	if len(ups) == 0 {
		return fmt.Errorf("netclient: empty update batch")
	}
	if len(ups) > wire.MaxUpdatesPerFrame {
		return fmt.Errorf("netclient: %d updates exceed the %d-per-frame protocol cap; split the batch",
			len(ups), wire.MaxUpdatesPerFrame)
	}
	frameBytes := wire.HeaderBytes + 2
	for i, up := range ups {
		if up.Table < 0 || up.Table >= g.Tables {
			return fmt.Errorf("netclient: update %d: table %d out of range [0, %d)", i, up.Table, g.Tables)
		}
		if len(up.Rows) == 0 || len(up.Rows) > g.MaxBatch*g.Reduction {
			return fmt.Errorf("netclient: update %d: %d rows out of range [1, %d]", i, len(up.Rows), g.MaxBatch*g.Reduction)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= g.TableRows {
				return fmt.Errorf("netclient: update %d: row index %d out of range [0, %d)", i, r, g.TableRows)
			}
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != g.Dim {
			return fmt.Errorf("netclient: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), g.Dim)
		}
		frameBytes += 8 + 4*len(up.Rows) + 4*len(up.Rows)*g.Dim
	}
	// A frame over the limit would be rejected server-side as a protocol
	// violation, tearing down the shared connection and failing every
	// pipelined call on it — so it is refused here as a per-call error.
	if frameBytes > c.cfg.MaxFrameBytes {
		return fmt.Errorf("netclient: update batch encodes to %d B, above the %d B frame limit; split the batch",
			frameBytes, c.cfg.MaxFrameBytes)
	}
	cc, err := c.pick()
	if err != nil {
		return err
	}
	ca := c.getCall()
	if cap(ca.wu) < len(ups) {
		ca.wu = make([]wire.Update, len(ups))
	}
	ca.wu = ca.wu[:len(ups)]
	for i, up := range ups {
		ca.wu[i] = wire.Update{Table: up.Table, Rows: up.Rows, Grads: up.Grads.Data()}
	}
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendUpdate(ca.buf[:0], id, ca.wu)
	for i := range ca.wu {
		ca.wu[i] = wire.Update{} // drop the borrowed views before pooling
	}
	err = cc.roundTrip(ca, id)
	c.putCall(ca)
	return err
}

// Metrics fetches the server's metrics report: the backend's own report
// (serve or cluster metrics) followed by the network plane's.
func (c *Client) Metrics() (string, error) {
	cc, err := c.pick()
	if err != nil {
		return "", err
	}
	ca := c.getCall()
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendFrame(ca.buf[:0], wire.OpMetrics, id, nil)
	err = cc.roundTrip(ca, id)
	text := ca.text
	c.putCall(ca)
	if err != nil {
		return "", err
	}
	return text, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	ca := c.getCall()
	id := cc.nextID.Add(1)
	ca.buf = wire.AppendFrame(ca.buf[:0], wire.OpPing, id, nil)
	err = cc.roundTrip(ca, id)
	c.putCall(ca)
	return err
}

// Close closes every connection and waits for the readers to finish;
// calls still in flight fail with a connection-lost error. It is
// idempotent.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cc := range c.conns {
		cc.fail(fmt.Errorf("netclient: client closed"))
	}
	for _, cc := range c.conns {
		<-cc.rdDone
	}
	return nil
}
