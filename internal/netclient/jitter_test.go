package netclient

import (
	"testing"
	"time"
)

// TestJitterSpread pins the reconnect jitter's contract: every draw
// lands in [d/2, d), and the draws actually spread across that window
// rather than clustering — the property that de-synchronizes a fleet of
// clients redialing a restarted replica at once.
func TestJitterSpread(t *testing.T) {
	const d = 100 * time.Millisecond
	const n = 2000
	lo, hi := d, time.Duration(0)
	buckets := [4]int{} // quartiles of [d/2, d)
	for i := 0; i < n; i++ {
		j := jitter(d)
		if j < d/2 || j >= d {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v)", d, j, d/2, d)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
		buckets[int(4*(j-d/2)/(d-d/2))%4]++
	}
	// Uniform draws cover the window: with 2000 samples each quartile
	// holds ~500; an empty one means the spread collapsed.
	for q, c := range buckets {
		if c == 0 {
			t.Fatalf("quartile %d of [d/2, d) drew 0 of %d samples: %v", q, n, buckets)
		}
	}
	if spread := hi - lo; spread < (d-d/2)/2 {
		t.Fatalf("draws span only %v of the %v window (min %v, max %v)", spread, d-d/2, lo, hi)
	}

	// Degenerate durations pass through untouched (no panic, no negative
	// sleep).
	for _, v := range []time.Duration{0, 1} {
		if got := jitter(v); got != v {
			t.Fatalf("jitter(%v) = %v, want unchanged", v, got)
		}
	}
}
