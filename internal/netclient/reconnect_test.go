package netclient_test

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// wideBackend has a different geometry than echoBackend — the "operator
// restarted the server with another model" case.
type wideBackend struct{ echoBackend }

// Geometry implements netserve.Backend.
func (b *wideBackend) Geometry() (int, int, int, int, int) { return 2, 2, 8, 100, 8 }

// serveAt binds a backend at a fixed address (so a restart can reuse it)
// and returns the server.
func serveAt(t *testing.T, b netserve.Backend, addr string, cfg netserve.Config) *netserve.Server {
	t.Helper()
	srv, err := netserve.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReconnectAfterServerRestart pins the supervised-reconnect contract:
// the client survives a full server restart between calls — fail-fast
// while the server is down (OnDown fired, Healthy false), automatically
// usable again once it is back (OnUp fired with the fresh hello).
func TestReconnectAfterServerRestart(t *testing.T) {
	var ups, downs atomic.Int64
	var lastHello atomic.Pointer[wire.Hello]
	addr := freeAddr(t)
	srv := serveAt(t, &echoBackend{}, addr, netserve.Config{Role: wire.RoleReplica})
	cl, err := netclient.Dial(addr, netclient.Config{
		Reconnect:    true,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		DialTimeout:  time.Second,
		OnUp: func(h wire.Hello) {
			lastHello.Store(&h)
			ups.Add(1)
		},
		OnDown: func(error) { downs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if !cl.Healthy() {
		t.Fatal("client not healthy after successful dial")
	}

	// Apply one update so the restart hello's UpdateSeq is observable.
	if err := cl.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{1}, Grads: tensor.New(1, 4)}}); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	waitCond(t, 5*time.Second, "OnDown", func() bool { return downs.Load() >= 1 })
	// While down: calls fail fast rather than hanging, and Healthy is
	// false.
	waitCond(t, 5*time.Second, "unhealthy", func() bool { return !cl.Healthy() })
	if err := cl.Ping(); err == nil {
		t.Fatal("ping succeeded with the server down")
	} else {
		var se *netclient.ServerError
		if errors.As(err, &se) {
			t.Fatalf("down-server ping returned a server error frame: %v", err)
		}
	}

	// Restart at the same address: the supervisor reconnects, OnUp fires
	// with the fresh hello (a fresh process: UpdateSeq back to 0), and
	// calls work again without a re-Dial.
	serveAt(t, &echoBackend{}, addr, netserve.Config{Role: wire.RoleReplica})
	waitCond(t, 5*time.Second, "OnUp", func() bool { return ups.Load() >= 1 })
	waitCond(t, 5*time.Second, "healthy", func() bool { return cl.Healthy() })
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
	h := lastHello.Load()
	if h == nil || h.Role != wire.RoleReplica || h.UpdateSeq != 0 {
		t.Fatalf("reconnect hello %+v, want RoleReplica at seq 0", h)
	}
	if got := cl.Hello(); got.UpdateSeq != 0 {
		t.Fatalf("Hello() seq %d after fresh restart, want 0", got.UpdateSeq)
	}
}

// freeAddr reserves a loopback address the test can bind servers to
// repeatedly.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestReconnectRejectsChangedGeometry pins that a server restarted with a
// different model is never silently reattached: the supervisor keeps the
// slot down (no OnUp, Healthy false, calls fail) until a server with the
// original geometry is back.
func TestReconnectRejectsChangedGeometry(t *testing.T) {
	addr := freeAddr(t)
	srv := serveAt(t, &echoBackend{}, addr, netserve.Config{})
	var ups atomic.Int64
	cl, err := netclient.Dial(addr, netclient.Config{
		Reconnect:    true,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
		DialTimeout:  time.Second,
		OnUp:         func(wire.Hello) { ups.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv.Close()
	waitCond(t, 5*time.Second, "unhealthy", func() bool { return !cl.Healthy() })

	// Restart with a different geometry: the client must refuse it.
	wrong := serveAt(t, &wideBackend{}, addr, netserve.Config{})
	time.Sleep(150 * time.Millisecond) // several backoff cycles against the wrong server
	if ups.Load() != 0 {
		t.Fatal("client attached to a server announcing a different geometry")
	}
	if cl.Healthy() {
		t.Fatal("client healthy against a mismatching server")
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("ping succeeded against a mismatching server")
	}

	// The right model comes back: now the client recovers.
	wrong.Close()
	serveAt(t, &echoBackend{}, addr, netserve.Config{})
	waitCond(t, 5*time.Second, "recovery", func() bool { return ups.Load() >= 1 && cl.Healthy() })
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after matching restart: %v", err)
	}
}

// TestClientSyncRoundTrip drives the sequenced-update path through the
// client: apply, idempotent replay, gap rejection.
func TestClientSyncRoundTrip(t *testing.T) {
	b, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	up := []runtime.TableUpdate{{Table: 0, Rows: []int{7}, Grads: tensor.New(1, g.Dim)}}
	seq, err := cl.Sync(0, up)
	if err != nil || seq != 1 {
		t.Fatalf("Sync(0) = %d, %v; want 1, nil", seq, err)
	}
	// Replay: acknowledged at the current count, not reapplied.
	seq, err = cl.Sync(0, up)
	if err != nil || seq != 1 {
		t.Fatalf("replayed Sync(0) = %d, %v; want 1, nil", seq, err)
	}
	if n := b.applied.Load(); n != 1 {
		t.Fatalf("%d updates applied after replay, want 1", n)
	}
	// Gap: typed BAD_REQUEST.
	_, err = cl.Sync(5, up)
	var se *netclient.ServerError
	if !errors.As(err, &se) || se.Code != wire.ErrBadRequest {
		t.Fatalf("gapped Sync: err = %v, want BAD_REQUEST ServerError", err)
	}
	// Validation happens client-side before any frame goes out.
	if _, err := cl.Sync(1, nil); err == nil {
		t.Fatal("empty sync batch accepted")
	}
}

// TestStartEmbedAsync pins the hedged-read primitive: two overlapping
// async embeds on one client, each drained and finished independently,
// both correct.
func TestStartEmbedAsync(t *testing.T) {
	_, addr := startEcho(t)
	cl, err := netclient.Dial(addr, netclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()

	mkRows := func(base int) [][]int {
		rows := make([][]int, g.Tables)
		for t := range rows {
			rows[t] = make([]int, g.Reduction)
			for j := range rows[t] {
				rows[t][j] = base
			}
		}
		return rows
	}
	ca1, err := cl.StartEmbed(nil, mkRows(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := cl.StartEmbed(nil, mkRows(20), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ca2.Done(); err != nil {
		t.Fatal(err)
	}
	if err := <-ca1.Done(); err != nil {
		t.Fatal(err)
	}
	if ca1.Dst()[0] != 10 || ca2.Dst()[0] != 20 {
		t.Fatalf("async embeds decoded %g/%g, want 10/20", ca1.Dst()[0], ca2.Dst()[0])
	}
	cl.Finish(ca1)
	cl.Finish(ca2)
}
