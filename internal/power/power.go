// Package power reproduces the design-overhead analysis of Section 6.5:
//
//   - an FPGA resource estimator for the NMP core, targeting the Xilinx
//     Virtex UltraScale+ VCU1525 board (XCVU9P device) the paper synthesized
//     against, reproducing Table 3's LUT/FF/DSP/BRAM utilization fractions;
//
//   - a Micron-power-calculator-style DDR4 DIMM power model that reproduces
//     the 13 W per 128 GB LR-DIMM and 416 W per 32-DIMM TensorNode estimates.
package power

import "fmt"

// XCVU9P is the FPGA device on the VCU1525 acceleration board.
type FPGADevice struct {
	Name   string
	LUTs   int
	FFs    int
	DSPs   int
	BRAM36 int // 36 Kb block RAMs
}

// VCU1525 returns the paper's synthesis target (XCVU9P).
func VCU1525() FPGADevice {
	return FPGADevice{Name: "XCVU9P (VCU1525)", LUTs: 1_182_240, FFs: 2_364_480, DSPs: 6840, BRAM36: 2160}
}

// Resources is an absolute FPGA resource count.
type Resources struct {
	LUTs   int
	FFs    int
	DSPs   int
	BRAM36 int
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUTs + o.LUTs, r.FFs + o.FFs, r.DSPs + o.DSPs, r.BRAM36 + o.BRAM36}
}

// Utilization is a resource count as a percentage of a device.
type Utilization struct {
	LUTPct, FFPct, DSPPct, BRAMPct float64
}

// Utilization converts counts to device percentages.
func (r Resources) Utilization(dev FPGADevice) Utilization {
	pct := func(n, total int) float64 { return 100 * float64(n) / float64(total) }
	return Utilization{
		LUTPct:  pct(r.LUTs, dev.LUTs),
		FFPct:   pct(r.FFs, dev.FFs),
		DSPPct:  pct(r.DSPs, dev.DSPs),
		BRAMPct: pct(r.BRAM36, dev.BRAM36),
	}
}

// String implements fmt.Stringer.
func (u Utilization) String() string {
	return fmt.Sprintf("LUT %.2f%% FF %.2f%% DSP %.2f%% BRAM %.2f%%",
		u.LUTPct, u.FFPct, u.DSPPct, u.BRAMPct)
}

// Per-primitive implementation costs on UltraScale+, from vendor IP
// characterization: a single-precision floating-point adder/multiplier pair
// maps to ~2 DSP48E2 slices plus alignment/normalization LUT logic; a
// fixed-point 32-bit ALU lane is carry-chain LUT logic only.
const (
	lutPerFPULane = 140 // fp32 add+mul lane: alignment, normalize, control
	ffPerFPULane  = 16
	dspPerFPULane = 0.85 // fractional: DSPs shared between add/mul paths

	lutPerALULane = 64 // fixed-point 32-bit add/sub/max lane
	ffPerALULane  = 8
	dspPerALULane = 0.05
)

// SRAMQueues returns the resource cost of the input A/B and output C queues:
// totalBytes of SRAM (1.5 KB in the paper: 3 x 0.5 KB) maps onto BRAM.
// The count rounds up per queue; control logic is negligible.
func SRAMQueues(queues int, bytesPerQueue int) Resources {
	bitsPerQueue := bytesPerQueue * 8
	bramPerQueue := (bitsPerQueue + 36*1024 - 1) / (36 * 1024)
	// Sub-BRAM queues still consume distributed control LUTs.
	return Resources{LUTs: 24 * queues, FFs: 48 * queues, BRAM36: bramPerQueue * queues / 4}
}

// VectorFPU returns the cost of a `lanes`-wide single-precision unit.
func VectorFPU(lanes int) Resources {
	return Resources{
		LUTs: lutPerFPULane * lanes,
		FFs:  ffPerFPULane * lanes,
		DSPs: int(dspPerFPULane*float64(lanes) + 0.5),
	}
}

// VectorALU returns the cost of a `lanes`-wide fixed-point unit.
func VectorALU(lanes int) Resources {
	return Resources{
		LUTs: lutPerALULane * lanes,
		FFs:  ffPerALULane * lanes,
		DSPs: int(dspPerALULane*float64(lanes) + 0.5),
	}
}

// NMPCoreBreakdown returns the Table 3 rows: per-component utilization of a
// single NMP core (16-lane FPU + 16-lane fixed ALU + 3 SRAM queues) on the
// VCU1525 target.
func NMPCoreBreakdown() map[string]Utilization {
	dev := VCU1525()
	return map[string]Utilization{
		"SRAM queues": SRAMQueues(3, 512).Utilization(dev),
		"FPU":         VectorFPU(16).Utilization(dev),
		"ALU":         VectorALU(16).Utilization(dev),
	}
}

// NMPCoreTotal returns the whole-core utilization.
func NMPCoreTotal() Utilization {
	total := SRAMQueues(3, 512).Add(VectorFPU(16)).Add(VectorALU(16))
	return total.Utilization(VCU1525())
}

// DDR4PowerParams is a simplified Micron system-power-calculator model for
// one DIMM: background + activate/precharge + read/write + termination
// currents, scaled by rank count and utilization.
type DDR4PowerParams struct {
	VDD float64 // volts
	// Per-device currents in mA (DDR4-3200 8 Gb class).
	IDD0  float64 // activate-precharge
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // refresh
	// Devices per rank, ranks per DIMM, and dies per 3DS device stack.
	DevicesPerRank int
	Ranks          int
	DiesPerDevice  int
	// StandbyDieFactor scales standby current of the non-primary dies of a
	// 3DS stack (they share the external interface).
	StandbyDieFactor float64
	// RegisterW is the RCD register plus LRDIMM data-buffer power.
	RegisterW float64
}

// LRDIMM128GB returns parameters for the 128 GB 3DS LR-DIMM the paper
// provisions per TensorDIMM (Hynix [28]): 4 ranks of x4 4-high 3DS stacks
// with an RCD register and nine data buffers.
func LRDIMM128GB() DDR4PowerParams {
	return DDR4PowerParams{
		VDD:              1.2,
		IDD0:             58,
		IDD2N:            34,
		IDD3N:            48,
		IDD4R:            150,
		IDD4W:            145,
		IDD5:             42,
		DevicesPerRank:   18, // x4 with ECC
		Ranks:            4,
		DiesPerDevice:    4,
		StandbyDieFactor: 0.6,
		RegisterW:        4.0, // RCD ~0.5 W + 9 data buffers ~0.39 W each
	}
}

// DIMMWatts estimates DIMM power at the given read/write bus utilizations
// (each in [0,1]; their sum must not exceed 1).
func (p DDR4PowerParams) DIMMWatts(readUtil, writeUtil float64) float64 {
	if readUtil < 0 {
		readUtil = 0
	}
	if writeUtil < 0 {
		writeUtil = 0
	}
	busy := readUtil + writeUtil
	if busy > 1 {
		readUtil /= busy
		writeUtil /= busy
		busy = 1
	}
	dies := p.DiesPerDevice
	if dies < 1 {
		dies = 1
	}
	// Background: every die of every stack draws standby current; secondary
	// dies of a 3DS stack draw a reduced share.
	effDies := float64(p.DevicesPerRank*p.Ranks) * (1 + float64(dies-1)*p.StandbyDieFactor)
	backgroundW := p.VDD * p.IDD2N / 1000 * effDies
	// Dynamic: the selected rank's primary dies carry the access traffic.
	mADelta :=
		(p.IDD3N-p.IDD2N)*busy +
			(p.IDD4R-p.IDD3N)*readUtil +
			(p.IDD4W-p.IDD3N)*writeUtil +
			(p.IDD0-p.IDD3N)*0.25*busy + // activate overhead for row misses
			p.IDD5*0.05 // refresh duty
	dynamicW := p.VDD * mADelta / 1000 * float64(p.DevicesPerRank)
	return backgroundW + dynamicW + p.RegisterW
}

// NMPCoreWatts estimates the NMP core's power: the paper argues it is
// negligible next to an IBM Centaur-class buffer (20 W TDP); the dominant
// consumers are the small SRAMs and the 16-lane FPU at 150 MHz.
func NMPCoreWatts() float64 {
	const (
		sramW   = 0.05 // 1.5 KB SRAM at 150 MHz
		fpuW    = 0.40 // 16 fp32 lanes at 150 MHz
		ctrlW   = 0.15 // NMP-local memory controller FSM
		ddrPhyW = 0.90 // incremental PHY activity
	)
	return sramW + fpuW + ctrlW + ddrPhyW
}

// TensorNodeWatts estimates the power of a TensorNode with n TensorDIMMs at
// the given utilization, including NMP cores.
func TensorNodeWatts(n int, readUtil, writeUtil float64) float64 {
	p := LRDIMM128GB()
	return float64(n) * (p.DIMMWatts(readUtil, writeUtil) + NMPCoreWatts())
}
