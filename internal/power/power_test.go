package power

import (
	"testing"
	"testing/quick"
)

func TestTable3Fractions(t *testing.T) {
	// Table 3 of the paper: every NMP-core component is a negligible
	// fraction of the XCVU9P. Paper values: SRAM queues BRAM 0.01%,
	// FPU LUT 0.19% / DSP 0.20%, ALU LUT 0.09% / DSP 0.01%.
	rows := NMPCoreBreakdown()

	sram := rows["SRAM queues"]
	if sram.BRAMPct > 0.1 {
		t.Fatalf("SRAM queues BRAM %.3f%%, want ~0.01%%", sram.BRAMPct)
	}
	fpu := rows["FPU"]
	if fpu.LUTPct < 0.05 || fpu.LUTPct > 0.5 {
		t.Fatalf("FPU LUT %.3f%%, want ~0.19%%", fpu.LUTPct)
	}
	if fpu.DSPPct < 0.05 || fpu.DSPPct > 0.5 {
		t.Fatalf("FPU DSP %.3f%%, want ~0.20%%", fpu.DSPPct)
	}
	alu := rows["ALU"]
	if alu.LUTPct < 0.02 || alu.LUTPct > 0.3 {
		t.Fatalf("ALU LUT %.3f%%, want ~0.09%%", alu.LUTPct)
	}
	total := NMPCoreTotal()
	if total.LUTPct > 1 || total.DSPPct > 1 || total.BRAMPct > 1 || total.FFPct > 1 {
		t.Fatalf("whole core exceeds 1%% of the device: %v", total)
	}
	if total.String() == "" {
		t.Fatal("empty String")
	}
}

func TestResourcesAdd(t *testing.T) {
	a := Resources{1, 2, 3, 4}
	b := Resources{10, 20, 30, 40}
	s := a.Add(b)
	if s != (Resources{11, 22, 33, 44}) {
		t.Fatalf("Add = %+v", s)
	}
}

func TestDIMMPowerMatchesPaper(t *testing.T) {
	// Section 6.5: "its power consumption becomes 13 W when estimated using
	// Micron's DDR4 system power calculator". Accept 10-16 W at a typical
	// active utilization.
	p := LRDIMM128GB()
	w := p.DIMMWatts(0.45, 0.25)
	if w < 10 || w > 16 {
		t.Fatalf("128 GB LRDIMM power = %.1f W, want ~13 W", w)
	}
}

func TestTensorNodePowerBudget(t *testing.T) {
	// Section 6.5: 32 TensorDIMMs ~= 416 W, acceptable against the
	// 350-700 W OCP accelerator-module envelope. With NMP cores included we
	// accept 350-550 W.
	w := TensorNodeWatts(32, 0.45, 0.25)
	if w < 350 || w > 550 {
		t.Fatalf("TensorNode power = %.0f W, want ~416 W (350-700 W envelope)", w)
	}
}

func TestNMPCoreNegligible(t *testing.T) {
	// The paper's claim: negligible vs the ~20 W IBM Centaur buffer TDP.
	if w := NMPCoreWatts(); w > 4 {
		t.Fatalf("NMP core %.1f W, must be negligible vs 20 W Centaur", w)
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	p := LRDIMM128GB()
	idle := p.DIMMWatts(0, 0)
	busy := p.DIMMWatts(0.5, 0.3)
	if busy <= idle {
		t.Fatalf("busy %.1f W <= idle %.1f W", busy, idle)
	}
}

func TestPowerClampsUtilization(t *testing.T) {
	p := LRDIMM128GB()
	over := p.DIMMWatts(0.9, 0.9) // sums > 1: must clamp, not explode
	max := p.DIMMWatts(1, 0)
	if over > max*1.2 {
		t.Fatalf("clamping failed: %.1f W vs %.1f W", over, max)
	}
	if p.DIMMWatts(-1, -1) <= 0 {
		t.Fatal("negative utilization must clamp to idle, not negative power")
	}
}

func TestQuickPowerBounded(t *testing.T) {
	p := LRDIMM128GB()
	f := func(rRaw, wRaw uint8) bool {
		r := float64(rRaw) / 255
		w := float64(wRaw) / 255
		watts := p.DIMMWatts(r, w)
		return watts > 0 && watts < 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationPercentages(t *testing.T) {
	dev := FPGADevice{Name: "tiny", LUTs: 1000, FFs: 1000, DSPs: 100, BRAM36: 10}
	u := Resources{LUTs: 100, FFs: 10, DSPs: 1, BRAM36: 1}.Utilization(dev)
	if u.LUTPct != 10 || u.FFPct != 1 || u.DSPPct != 1 || u.BRAMPct != 10 {
		t.Fatalf("utilization: %+v", u)
	}
}
