package tensordimm_test

// Cross-plane integration tests: the functional plane (NMP cores executing
// TensorISA over real data), the analytical traffic model (isa.RankTraffic)
// and the performance plane (trace -> DRAM simulation) must all agree on
// what one tensor operation does.

import (
	"math/rand"
	"testing"

	"tensordimm"
	"tensordimm/internal/addrmap"
	"tensordimm/internal/dram"
	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/trace"
)

// TestTrafficModelMatchesDatapath executes an AVERAGE on a real node and
// checks that the NMP cores' block counters equal the ISA-level analytical
// traffic model times the DIMM count.
func TestTrafficModelMatchesDatapath(t *testing.T) {
	const dimms = 8
	nd, err := node.New(node.Config{DIMMs: dimms, PerDIMMBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// 16 input stripes averaged 4-way into 4 output stripes.
	in := isa.Average(0, 4, 1024, 4)
	buf := make([]float32, 16*dimms*16)
	for i := range buf {
		buf[i] = float32(i % 11)
	}
	if err := nd.WriteFloats(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := nd.Execute(isa.Program{in}); err != nil {
		t.Fatal(err)
	}
	want := in.RankTraffic()
	got := nd.Stats()
	if got.BlocksRead != want.ReadBlocks*dimms {
		t.Fatalf("reads: datapath %d vs model %d x %d DIMMs", got.BlocksRead, want.ReadBlocks, dimms)
	}
	if got.BlocksWritten != want.WriteBlocks*dimms {
		t.Fatalf("writes: datapath %d vs model %d x %d DIMMs", got.BlocksWritten, want.WriteBlocks, dimms)
	}
}

// TestTraceMatchesTrafficModel checks that the DRAM trace generator emits
// exactly the traffic the ISA model predicts for REDUCE (whole-node view).
func TestTraceMatchesTrafficModel(t *testing.T) {
	g, err := trace.NewGenerator(2048, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const embeddings = 24
	l := g.DefaultLayout(1, embeddings)
	reqs := g.Reduce(l, embeddings)
	// REDUCE count in stripes: embeddings * stripesPerEmb; on the default
	// 32-DIMM node one 2 KiB embedding is exactly one stripe.
	in := isa.Reduce(isa.RAdd, 0, 0, 0, embeddings)
	tr := in.RankTraffic()
	var reads, writes uint64
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != tr.ReadBlocks*32 || writes != tr.WriteBlocks*32 {
		t.Fatalf("trace %d/%d vs model %d/%d x 32", reads, writes, tr.ReadBlocks, tr.WriteBlocks)
	}
}

// TestExperimentsDeterministic ensures the analytic experiment drivers are
// reproducible run to run (all randomness is seeded).
func TestExperimentsDeterministic(t *testing.T) {
	p := tensordimm.DefaultPlatform()
	a, err := tensordimm.RunExperiment("fig14", p, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tensordimm.RunExperiment("fig14", p, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Fatal("fig14 is not deterministic")
	}
}

// TestBankStaggerAblation quantifies the bank-staggered region placement
// DESIGN.md calls out: a naive back-to-back layout must lose substantial
// REDUCE bandwidth on the TensorNode organization (three streams fighting
// over 16 banks), and the staggered layout must recover it.
func TestBankStaggerAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("DRAM replay in -short mode")
	}
	g, err := trace.NewGenerator(2048, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	sys := dram.NewSystem(addrmap.TensorDIMM(32, 1<<16), dram.DDR43200())
	// 2048 embeddings x 2 KiB = 4 MiB per region: exactly one bank cycle
	// under this mapping, so back-to-back regions collide bank-for-bank —
	// the worst case a bank-oblivious allocator can produce.
	const embeddings = 2048

	staggered := g.LayoutFor(sys.Scheme.Geom, 1, embeddings)
	bwStaggered := sys.Run(g.Reduce(staggered, embeddings)).BandwidthGBs(sys.Timing)

	naive := staggered
	span := uint64(embeddings) * uint64(g.EmbBytes)
	naive.ScratchB = naive.ScratchA + span
	naive.OutBase = naive.ScratchB + span
	bwNaive := sys.Run(g.Reduce(naive, embeddings)).BandwidthGBs(sys.Timing)

	if bwStaggered < bwNaive*1.15 {
		t.Fatalf("staggering gains only %.0f -> %.0f GB/s; expected a clear win",
			bwNaive, bwStaggered)
	}
	t.Logf("REDUCE bandwidth: naive %.0f GB/s, bank-staggered %.0f GB/s", bwNaive, bwStaggered)
}

// TestZipfianVsUniformRowLocality probes an extension beyond the paper:
// skewed (Zipfian) lookups concentrate on hot table rows, which raises the
// DRAM row-hit rate of GATHER compared to uniform traffic.
func TestZipfianVsUniformRowLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("DRAM replay in -short mode")
	}
	g, err := trace.NewGenerator(2048, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	sys := dram.NewSystem(addrmap.TensorDIMM(32, 1<<16), dram.DDR43200())
	l := g.DefaultLayout(1, 2000)

	hitRate := func(dist int) float64 {
		rng := rand.New(rand.NewSource(99))
		indices := make([]int, 2000)
		if dist == 0 {
			for i := range indices {
				indices[i] = rng.Intn(g.TableRows)
			}
		} else {
			z := rand.NewZipf(rng, 1.3, 1, uint64(g.TableRows-1))
			for i := range indices {
				indices[i] = int(z.Uint64())
			}
		}
		return sys.Run(g.Gather(l, indices)).RowHitRate()
	}
	uniform := hitRate(0)
	zipf := hitRate(1)
	if zipf <= uniform {
		t.Fatalf("zipf hit rate %.2f must exceed uniform %.2f", zipf, uniform)
	}
	t.Logf("GATHER row-hit rate: uniform %.2f, zipfian %.2f", uniform, zipf)
}
