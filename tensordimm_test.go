package tensordimm_test

import (
	"testing"

	"tensordimm"
	"tensordimm/internal/tensor"
)

// TestPublicAPIEndToEnd exercises the whole public surface: build a node,
// deploy a model, run a near-memory inference, and verify it matches the
// pure-software model bit for bit.
func TestPublicAPIEndToEnd(t *testing.T) {
	nd, err := tensordimm.NewNode(8, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tensordimm.YouTube()
	cfg.TableRows = 300
	cfg.EmbDim = 128 // one stripe on 8 DIMMs
	cfg.Reduction = 5
	cfg.Hidden = []int{32, 16, 8, 4}

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tensordimm.Deploy(model, nd, 8)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := tensordimm.NewWorkload(cfg.TableRows, tensordimm.Zipfian, 7)
	if err != nil {
		t.Fatal(err)
	}
	batch := 4
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)

	got, err := dep.Infer(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Infer(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("near-memory inference differs from software model")
	}
}

func TestPublicBenchmarks(t *testing.T) {
	bs := tensordimm.Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("Benchmarks() = %d entries", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name] = true
	}
	for _, want := range []string{"NCF", "YouTube", "Fox", "Facebook"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestPublicSimulation(t *testing.T) {
	p := tensordimm.DefaultPlatform()
	if len(tensordimm.DesignPoints()) != 5 {
		t.Fatal("want five design points")
	}
	b := tensordimm.Simulate(tensordimm.TDIMM, tensordimm.YouTube(), 64, p)
	if b.TotalS() <= 0 {
		t.Fatal("non-positive latency")
	}
	if s := tensordimm.Speedup(tensordimm.TDIMM, tensordimm.CPUOnly, tensordimm.YouTube(), 64, p); s < 2 {
		t.Fatalf("TDIMM speedup over CPU-only = %.1f, implausible", s)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := tensordimm.Experiments()
	if len(ids) != 14 {
		t.Fatalf("Experiments() = %d ids, want 12 paper artifacts + 2 extensions", len(ids))
	}
	r, err := tensordimm.RunExperiment("tab2", tensordimm.DefaultPlatform(), false)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "tab2" || len(r.Table.Rows) != 4 {
		t.Fatalf("tab2 result malformed: %+v", r)
	}
	if _, err := tensordimm.RunExperiment("bogus", tensordimm.DefaultPlatform(), false); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

// TestPublicClusterAPI exercises the sharded multi-node surface: shard a
// model row-wise across 3 nodes with hot-row caches, serve a skewed
// workload, and verify bit-identity with the single-model golden path.
func TestPublicClusterAPI(t *testing.T) {
	cfg := tensordimm.YouTube()
	cfg.TableRows = 301
	cfg.EmbDim = 128
	cfg.Reduction = 5
	cfg.Hidden = []int{32, 16, 8, 4}
	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:      3,
		Strategy:   tensordimm.RowWise,
		CacheBytes: 64 << 10,
		MaxBatch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen, err := tensordimm.NewZipfWorkload(cfg.TableRows, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		indices := gen.Batch(cfg.Tables, 4, cfg.Reduction)
		got, err := cl.Infer(indices, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Infer(indices, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("iter %d: cluster inference differs from software model", i)
		}
	}
	m := cl.Metrics()
	if m.Requests != 4 || m.CacheHits+m.CacheMisses != m.Lookups {
		t.Fatalf("cluster metrics malformed: %+v", m)
	}
}

// TestPublicOnlineUpdateAPI exercises the online-update surface end to
// end: TableUpdate / NewTensor through Cluster.ApplyUpdates and
// Server.Update, with reads staying bit-identical to the golden model.
func TestPublicOnlineUpdateAPI(t *testing.T) {
	cfg := tensordimm.YouTube()
	cfg.TableRows = 301
	cfg.EmbDim = 128
	cfg.Reduction = 5
	cfg.Hidden = []int{32, 16, 8, 4}
	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:      2,
		Strategy:   tensordimm.TableWise,
		CacheBytes: 64 << 10,
		MaxBatch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	grads := tensordimm.NewTensor(3, cfg.EmbDim)
	for i := range grads.Data() {
		grads.Data()[i] = 0.25
	}
	up := tensordimm.TableUpdate{Table: 1, Rows: []int{5, 5, 17}, Grads: grads}
	if err := cl.ApplyUpdates([]tensordimm.TableUpdate{up}); err != nil {
		t.Fatal(err)
	}
	gen, err := tensordimm.NewZipfWorkload(cfg.TableRows, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	indices := gen.Batch(cfg.Tables, 4, cfg.Reduction)
	indices[1][0], indices[1][1] = 5, 17 // touch the updated rows
	got, err := cl.Embed(indices, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cl.GoldenEmbedding(indices, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("post-update cluster embed differs from golden")
	}
	if m := cl.Metrics(); m.Updates != 1 || m.RowsUpdated != 3 {
		t.Fatalf("update metrics malformed: %+v", m)
	}

	// Single-node server path.
	nd, err := tensordimm.NewNode(8, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tensordimm.DeployConcurrent(model, nd, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tensordimm.NewServer(tensordimm.ServeConfig{}, dep)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Update([]tensordimm.TableUpdate{up}); err != nil {
		t.Fatal(err)
	}
	got, err = srv.Embed(indices, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err = dep.GoldenEmbedding(indices, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("post-update server embed differs from golden")
	}
	if m := srv.Metrics(); m.Updates != 1 || m.RowsUpdated != 3 {
		t.Fatalf("server update metrics malformed: %+v", m)
	}
}
