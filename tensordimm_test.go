package tensordimm_test

import (
	"testing"

	"tensordimm"
	"tensordimm/internal/tensor"
)

// TestPublicAPIEndToEnd exercises the whole public surface: build a node,
// deploy a model, run a near-memory inference, and verify it matches the
// pure-software model bit for bit.
func TestPublicAPIEndToEnd(t *testing.T) {
	nd, err := tensordimm.NewNode(8, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tensordimm.YouTube()
	cfg.TableRows = 300
	cfg.EmbDim = 128 // one stripe on 8 DIMMs
	cfg.Reduction = 5
	cfg.Hidden = []int{32, 16, 8, 4}

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tensordimm.Deploy(model, nd, 8)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := tensordimm.NewWorkload(cfg.TableRows, tensordimm.Zipfian, 7)
	if err != nil {
		t.Fatal(err)
	}
	batch := 4
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)

	got, err := dep.Infer(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Infer(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("near-memory inference differs from software model")
	}
}

func TestPublicBenchmarks(t *testing.T) {
	bs := tensordimm.Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("Benchmarks() = %d entries", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name] = true
	}
	for _, want := range []string{"NCF", "YouTube", "Fox", "Facebook"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestPublicSimulation(t *testing.T) {
	p := tensordimm.DefaultPlatform()
	if len(tensordimm.DesignPoints()) != 5 {
		t.Fatal("want five design points")
	}
	b := tensordimm.Simulate(tensordimm.TDIMM, tensordimm.YouTube(), 64, p)
	if b.TotalS() <= 0 {
		t.Fatal("non-positive latency")
	}
	if s := tensordimm.Speedup(tensordimm.TDIMM, tensordimm.CPUOnly, tensordimm.YouTube(), 64, p); s < 2 {
		t.Fatalf("TDIMM speedup over CPU-only = %.1f, implausible", s)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := tensordimm.Experiments()
	if len(ids) != 13 {
		t.Fatalf("Experiments() = %d ids, want 12 paper artifacts + 1 extension", len(ids))
	}
	r, err := tensordimm.RunExperiment("tab2", tensordimm.DefaultPlatform(), false)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "tab2" || len(r.Table.Rows) != 4 {
		t.Fatalf("tab2 result malformed: %+v", r)
	}
	if _, err := tensordimm.RunExperiment("bogus", tensordimm.DefaultPlatform(), false); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

// TestPublicClusterAPI exercises the sharded multi-node surface: shard a
// model row-wise across 3 nodes with hot-row caches, serve a skewed
// workload, and verify bit-identity with the single-model golden path.
func TestPublicClusterAPI(t *testing.T) {
	cfg := tensordimm.YouTube()
	cfg.TableRows = 301
	cfg.EmbDim = 128
	cfg.Reduction = 5
	cfg.Hidden = []int{32, 16, 8, 4}
	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:      3,
		Strategy:   tensordimm.RowWise,
		CacheBytes: 64 << 10,
		MaxBatch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen, err := tensordimm.NewZipfWorkload(cfg.TableRows, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		indices := gen.Batch(cfg.Tables, 4, cfg.Reduction)
		got, err := cl.Infer(indices, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Infer(indices, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("iter %d: cluster inference differs from software model", i)
		}
	}
	m := cl.Metrics()
	if m.Requests != 4 || m.CacheHits+m.CacheMisses != m.Lookups {
		t.Fatalf("cluster metrics malformed: %+v", m)
	}
}
