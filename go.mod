module tensordimm

go 1.21
